//===- transforms/IntraTile.cpp - Intra-tile fusion / rescheduling --------===//

#include "transforms/IntraTile.h"

#include "transforms/Conv.h"

#include <cassert>

namespace akg {
namespace transforms {

using namespace sched;

namespace {

/// Splits a filter's statements into units (init/update pairs together).
std::vector<std::vector<unsigned>> unitsOf(const std::vector<unsigned> &Stmts,
                                           const ir::PolyProgram &P) {
  std::vector<std::vector<unsigned>> Units;
  for (unsigned I = 0; I < Stmts.size(); ++I) {
    if (P.Stmts[Stmts[I]].StmtRole == ir::PolyStmt::Role::Init &&
        I + 1 < Stmts.size() &&
        P.Stmts[Stmts[I + 1]].StmtRole == ir::PolyStmt::Role::Update) {
      Units.push_back({Stmts[I], Stmts[I + 1]});
      ++I;
    } else {
      Units.push_back({Stmts[I]});
    }
  }
  return Units;
}

std::string markForUnit(const std::vector<unsigned> &Unit,
                        const ir::PolyProgram &P, IntraTileReport &Rep) {
  for (unsigned S : Unit)
    if (P.Stmts[S].StmtRole == ir::PolyStmt::Role::Update &&
        isCubeStatement(P.Stmts[S])) {
      ++Rep.CubeSubtrees;
      return "cube_unit";
    }
  ++Rep.LocalUbSubtrees;
  return "local_UB";
}

/// Distributes a multi-unit point band into per-unit bands, each wrapped by
/// its dispatch mark (the Fig 3f shape: local_UB isolation + the grouped
/// cube unit). \p F is a Filter whose child is the shared point band.
void distributeAndMark(TreeNode *F, const ir::PolyProgram &P,
                       IntraTileReport &Rep) {
  auto Units = unitsOf(F->FilterStmts, P);
  if (F->Children.empty())
    return;
  if (Units.size() == 1) {
    // Single unit: wrap the whole subtree (band included) with the mark.
    std::unique_ptr<TreeNode> Old = std::move(F->Children[0]);
    F->Children.clear();
    TreeNode *M = F->addChild(makeMark(markForUnit(Units[0], P, Rep)));
    M->addChild(std::move(Old));
    return;
  }
  TreeNode *B = F->child(0);
  assert(B->Kind == NodeKind::Band && "expected the shared point band");
  // Leaf subtrees per statement (from the band's inner sequence).
  std::map<unsigned, std::unique_ptr<TreeNode>> LeafOf;
  if (!B->Children.empty() && B->child(0)->Kind == NodeKind::Sequence) {
    TreeNode *Seq = B->child(0);
    for (auto &C : Seq->Children) {
      assert(C->Kind == NodeKind::Filter && C->FilterStmts.size() == 1);
      LeafOf[C->FilterStmts[0]] = std::move(C);
    }
  }
  auto NewSeq = makeSequence();
  for (const auto &Unit : Units) {
    TreeNode *UF = NewSeq->addChild(makeFilter(Unit));
    TreeNode *M = UF->addChild(makeMark(markForUnit(Unit, P, Rep)));
    std::map<unsigned, StmtSchedule> Part;
    for (unsigned S : Unit)
      Part[S] = B->Partial.at(S);
    TreeNode *UB2 = M->addChild(makeBand(std::move(Part), B->Permutable,
                                         B->Coincident));
    if (Unit.size() == 1) {
      auto It = LeafOf.find(Unit[0]);
      if (It != LeafOf.end() && It->second && !It->second->Children.empty())
        UB2->addChild(std::move(It->second->Children[0]));
      continue;
    }
    // Init/update pair: keep their inner order and reduction band.
    TreeNode *InnerSeq = UB2->addChild(makeSequence());
    for (unsigned S : Unit) {
      TreeNode *LF = InnerSeq->addChild(makeFilter({S}));
      auto It = LeafOf.find(S);
      if (It != LeafOf.end() && It->second && !It->second->Children.empty())
        LF->addChild(std::move(It->second->Children[0]));
    }
  }
  F->Children.clear();
  F->addChild(std::move(NewSeq));
}

} // namespace

IntraTileReport applyIntraTileFusion(ScheduleTree &T,
                                     const ir::PolyProgram &P) {
  IntraTileReport Rep;
  // Collect every on-chip region first (the no-fusion ablation has one per
  // cluster), then process each once.
  std::vector<TreeNode *> Regions;
  walkTree(T.root(), [&](TreeNode *N) {
    if (N->Kind == NodeKind::Mark && N->MarkTag == "on_chip")
      Regions.push_back(N);
    return true;
  });
  for (TreeNode *OnChip : Regions) {
    if (OnChip->Children.empty())
      continue;
    TreeNode *C = OnChip->child(0);
    if (C->Kind == NodeKind::Extension) {
      assert(!C->Children.empty() &&
             C->child(0)->Kind == NodeKind::Sequence);
      for (auto &F : C->child(0)->Children)
        if (F->Kind == NodeKind::Filter)
          distributeAndMark(F.get(), P, Rep);
    } else if (C->Kind == NodeKind::Filter) {
      distributeAndMark(C, P, Rep);
    } else if (C->Kind == NodeKind::Band) {
      // Single cluster without extension: synthesize the filter.
      std::vector<unsigned> Stmts;
      for (const auto &[Id, SS] : C->Partial) {
        (void)SS;
        Stmts.push_back(Id);
      }
      std::unique_ptr<TreeNode> Band = std::move(OnChip->Children[0]);
      OnChip->Children.clear();
      TreeNode *F = OnChip->addChild(makeFilter(Stmts));
      F->addChild(std::move(Band));
      distributeAndMark(F, P, Rep);
    }
  }
  return Rep;
}

unsigned sinkVectorizableDims(ScheduleTree &T, const ir::PolyProgram &P) {
  unsigned Changed = 0;
  walkTree(T.root(), [&](TreeNode *Mk) {
    if (Mk->Kind != NodeKind::Mark || Mk->MarkTag != "local_UB")
      return true;
    walkTree(Mk, [&](TreeNode *N) {
      if (N->Kind != NodeKind::Band || !N->Permutable || N->bandWidth() < 2)
        return true;
      // Only interchange pure unit-row bands (identity permutations).
      for (const auto &[Id, SS] : N->Partial) {
        (void)Id;
        for (const ScheduleRow &R : SS.Rows) {
          if (R.Denom != 1)
            return true;
          int NonZero = 0;
          for (int64_t C : R.Coeffs)
            if (C != 0)
              ++NonZero;
          if (NonZero != 1)
            return true;
        }
      }
      unsigned StmtId = N->Partial.begin()->first;
      const ir::PolyStmt &St = P.Stmts[StmtId];
      const StmtSchedule &SS = N->Partial.begin()->second;
      auto RowDim = [&](const ScheduleRow &R) {
        for (unsigned K = 0; K < R.Coeffs.size(); ++K)
          if (R.Coeffs[K] != 0)
            return K;
        return 0u;
      };
      auto StrideOneScore = [&](unsigned Dim) {
        unsigned Score = 0;
        auto CheckAccess = [&](const ir::PolyAccess &A) {
          if (A.Indices.empty())
            return;
          std::vector<int64_t> C;
          int64_t K;
          if (!ir::exprToAffine(A.Indices.back(), St.Iters, C, K))
            return;
          if (Dim < C.size() && C[Dim] == 1)
            ++Score;
        };
        CheckAccess(St.Write);
        for (const ir::PolyAccess &A : St.Reads)
          CheckAccess(A);
        return Score;
      };
      unsigned BestRow = 0, BestScore = 0;
      for (unsigned R = 0; R < SS.Rows.size(); ++R) {
        unsigned Score = StrideOneScore(RowDim(SS.Rows[R]));
        if (Score > BestScore) {
          BestScore = Score;
          BestRow = R;
        }
      }
      unsigned Last = N->bandWidth() - 1;
      if (BestScore == 0 || BestRow == Last)
        return true;
      for (auto &[Id, SS2] : N->Partial) {
        (void)Id;
        ScheduleRow Row = SS2.Rows[BestRow];
        SS2.Rows.erase(SS2.Rows.begin() + BestRow);
        SS2.Rows.push_back(Row);
      }
      if (BestRow < N->Coincident.size()) {
        bool C = N->Coincident[BestRow];
        N->Coincident.erase(N->Coincident.begin() + BestRow);
        N->Coincident.push_back(C);
      }
      ++Changed;
      return true;
    });
    return true;
  });
  return Changed;
}

} // namespace transforms
} // namespace akg
