//===- transforms/IntraTile.h - Intra-tile fusion / rescheduling -*- C++ -*-=//
//
// The architecture-specific intra-tile strategy of Sec 4.3 ("fusion when
// forking data"): once a tile's data is on chip, statements that do not
// involve dot-product reductions are marked "local_UB" (their data streams
// to the Unified Buffer and they execute on the Vector/Scalar units), while
// dot-product reductions are marked "cube_unit" (init grouped with the
// reduction, dispatched to the Cube unit). Loop distribution between the
// vector statements is inherent in the per-statement filters; the
// fast-varying dimension is sunk innermost for vectorization (the
// permutable-band interchange of Sec 4.3).
//
//===----------------------------------------------------------------------===//

#ifndef AKG_TRANSFORMS_INTRATILE_H
#define AKG_TRANSFORMS_INTRATILE_H

#include "ir/PolyExtract.h"
#include "schedule/ScheduleTree.h"

namespace akg {
namespace transforms {

struct IntraTileReport {
  unsigned LocalUbSubtrees = 0;
  unsigned CubeSubtrees = 0;
  unsigned SunkDims = 0;
};

/// Inserts "local_UB" / "cube_unit" / "cube_init" marks over the leaf
/// statement subtrees inside the on-chip region.
IntraTileReport applyIntraTileFusion(sched::ScheduleTree &T,
                                     const ir::PolyProgram &P);

/// For each permutable point band, interchanges rows so the dimension with
/// unit-stride accesses is innermost. Returns how many bands changed.
unsigned sinkVectorizableDims(sched::ScheduleTree &T,
                              const ir::PolyProgram &P);

} // namespace transforms
} // namespace akg

#endif // AKG_TRANSFORMS_INTRATILE_H
