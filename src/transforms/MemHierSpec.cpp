//===- transforms/MemHierSpec.cpp - Fig 8 memory-hierarchy language -------===//

#include "transforms/MemHierSpec.h"

#include <cctype>
#include <functional>
#include <map>
#include <set>
#include <sstream>

namespace akg {
namespace transforms {

namespace {

struct Cursor {
  const std::string &S;
  size_t Pos = 0;

  void skip() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }
  bool atEnd() {
    skip();
    return Pos >= S.size();
  }
  bool lit(char C) {
    skip();
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }
  bool ident(std::string &Out) {
    skip();
    size_t B = Pos;
    while (Pos < S.size() && (std::isalnum(static_cast<unsigned char>(S[Pos])) ||
                              S[Pos] == '_'))
      ++Pos;
    if (Pos == B)
      return false;
    Out = S.substr(B, Pos - B);
    return true;
  }
  bool integer(int64_t &V) {
    skip();
    size_t B = Pos;
    while (Pos < S.size() && std::isdigit(static_cast<unsigned char>(S[Pos])))
      ++Pos;
    if (Pos == B)
      return false;
    V = std::stoll(S.substr(B, Pos - B));
    return true;
  }
};

const std::set<std::string> KnownBuffers = {"GM",  "L1",  "UB",
                                            "L0A", "L0B", "L0C"};
const std::set<std::string> KnownComputeTypes = {"cube", "vector", "scalar"};

/// Legal dataflow edges of the DaVinci architecture (Fig 1).
bool legalPath(const std::string &From, const std::string &To) {
  static const std::set<std::pair<std::string, std::string>> Paths = {
      {"GM", "L1"},  {"GM", "UB"},  {"L1", "L0A"}, {"L1", "L0B"},
      {"UB", "L1"},  {"L0C", "UB"}, {"UB", "GM"},  {"L0C", "GM"},
      {"L0A", "L0C"}, {"L0B", "L0C"}, {"UB", "UB"}};
  return Paths.count({From, To}) != 0;
}

} // namespace

bool parseNpuSpec(const std::string &Text, NpuSpec &Out, std::string &Error) {
  Cursor C{Text};
  Out.Stmts.clear();
  while (!C.atEnd()) {
    std::string Word;
    if (!C.ident(Word)) {
      Error = "expected statement at offset " + std::to_string(C.Pos);
      return false;
    }
    NpuStmt St;
    if (Word == "buf") {
      St.Kind = NpuStmtKind::BufferSpec;
      if (!C.ident(St.Buffer) || !C.lit('(') || !C.integer(St.BufferSize) ||
          !C.lit(')')) {
        Error = "malformed buffer spec";
        return false;
      }
      Out.Stmts.push_back(std::move(St));
      continue;
    }
    St.Kind = Word == "dataflow" ? NpuStmtKind::Dataflow
                                 : NpuStmtKind::ComputeUnit;
    St.ComputeType = Word;
    if (St.Kind == NpuStmtKind::ComputeUnit &&
        !KnownComputeTypes.count(Word)) {
      Error = "unknown compute type '" + Word + "'";
      return false;
    }
    if (!C.lit('(')) {
      Error = "expected '(' after " + Word;
      return false;
    }
    std::string Buf;
    while (C.ident(Buf))
      St.InBufs.push_back(Buf);
    if (!C.lit('-') || !C.lit('>')) {
      Error = "expected '->' in " + Word + " statement";
      return false;
    }
    while (C.ident(Buf))
      St.OutBufs.push_back(Buf);
    if (!C.lit(',') || !C.integer(St.Throughput) || !C.lit(',') ||
        !C.integer(St.Alignment) || !C.lit(')')) {
      Error = "expected ', throughput, alignment)' in " + Word;
      return false;
    }
    if (St.InBufs.empty() || St.OutBufs.empty()) {
      Error = Word + " statement needs input and output buffers";
      return false;
    }
    Out.Stmts.push_back(std::move(St));
  }
  if (Out.Stmts.empty()) {
    Error = "empty npu specification";
    return false;
  }
  return true;
}

std::string printNpuSpec(const NpuSpec &S) {
  std::ostringstream OS;
  for (const NpuStmt &St : S.Stmts) {
    switch (St.Kind) {
    case NpuStmtKind::BufferSpec:
      OS << "buf " << St.Buffer << " (" << St.BufferSize << ")\n";
      break;
    case NpuStmtKind::ComputeUnit:
    case NpuStmtKind::Dataflow: {
      OS << St.ComputeType << " (";
      for (unsigned I = 0; I < St.InBufs.size(); ++I)
        OS << (I ? " " : "") << St.InBufs[I];
      OS << " -> ";
      for (unsigned I = 0; I < St.OutBufs.size(); ++I)
        OS << (I ? " " : "") << St.OutBufs[I];
      OS << ", " << St.Throughput << ", " << St.Alignment << ")\n";
      break;
    }
    }
  }
  return OS.str();
}

bool validateNpuSpec(const NpuSpec &S, const sim::MachineSpec &M,
                     std::string &Error) {
  for (const NpuStmt &St : S.Stmts) {
    if (St.Kind == NpuStmtKind::BufferSpec) {
      if (!KnownBuffers.count(St.Buffer)) {
        Error = "unknown buffer '" + St.Buffer + "'";
        return false;
      }
      sim::Buffer B = St.Buffer == "L1"    ? sim::Buffer::L1
                      : St.Buffer == "UB"  ? sim::Buffer::UB
                      : St.Buffer == "L0A" ? sim::Buffer::L0A
                      : St.Buffer == "L0B" ? sim::Buffer::L0B
                      : St.Buffer == "L0C" ? sim::Buffer::L0C
                                           : sim::Buffer::GM;
      if (B != sim::Buffer::GM && St.BufferSize > M.bufferBytes(B)) {
        Error = "buffer '" + St.Buffer + "' exceeds machine capacity";
        return false;
      }
      continue;
    }
    for (const std::string &B : St.InBufs)
      if (!KnownBuffers.count(B)) {
        Error = "unknown buffer '" + B + "'";
        return false;
      }
    for (const std::string &B : St.OutBufs)
      if (!KnownBuffers.count(B)) {
        Error = "unknown buffer '" + B + "'";
        return false;
      }
    if (St.Kind == NpuStmtKind::Dataflow) {
      for (const std::string &From : St.InBufs)
        for (const std::string &To : St.OutBufs)
          if (!legalPath(From, To)) {
            Error = "illegal dataflow path " + From + " -> " + To;
            return false;
          }
    }
  }
  return true;
}

NpuSpec specFromKernel(const cce::Kernel &K, const sim::MachineSpec &M) {
  NpuSpec S;
  // Buffer allocations.
  std::map<std::string, sim::Buffer> LocOf;
  for (const cce::BufferAlloc &B : K.Buffers) {
    NpuStmt St;
    St.Kind = NpuStmtKind::BufferSpec;
    St.Buffer = sim::bufferName(B.Location);
    St.BufferSize = B.bytes();
    S.Stmts.push_back(St);
    LocOf[B.Name] = B.Location;
  }
  auto LocName = [&](const std::string &Buf) -> std::string {
    auto It = LocOf.find(Buf);
    return It == LocOf.end() ? "GM" : sim::bufferName(It->second);
  };
  // One statement per distinct instruction shape.
  std::set<std::string> Seen;
  std::function<void(const std::vector<cce::InstrPtr> &)> Walk =
      [&](const std::vector<cce::InstrPtr> &L) {
        for (const cce::InstrPtr &I : L) {
          if (I->Kind == cce::InstrKind::Loop) {
            Walk(I->Body);
            continue;
          }
          NpuStmt St;
          switch (I->Kind) {
          case cce::InstrKind::Dma:
          case cce::InstrKind::Img2Col:
          case cce::InstrKind::LoadFractal:
            St.Kind = NpuStmtKind::Dataflow;
            St.ComputeType = "dataflow";
            St.Throughput = I->Pipe == sim::Pipe::MTE1 ? M.OnChipBandwidth
                                                       : M.GmBandwidth;
            St.Alignment = 32;
            break;
          case cce::InstrKind::Mmad:
            St.Kind = NpuStmtKind::ComputeUnit;
            St.ComputeType = "cube";
            St.Throughput = M.CubeM * M.CubeN * M.CubeK;
            St.Alignment = M.CubeM;
            break;
          case cce::InstrKind::VectorOp:
            St.Kind = NpuStmtKind::ComputeUnit;
            St.ComputeType = "vector";
            St.Throughput = M.VectorLanes;
            St.Alignment = 16;
            break;
          case cce::InstrKind::ScalarOp:
            St.Kind = NpuStmtKind::ComputeUnit;
            St.ComputeType = "scalar";
            St.Throughput = 1;
            St.Alignment = 1;
            break;
          default:
            continue;
          }
          for (const std::string &B : I->ReadBufs)
            St.InBufs.push_back(LocName(B));
          for (const std::string &B : I->WriteBufs)
            St.OutBufs.push_back(LocName(B));
          if (St.InBufs.empty() || St.OutBufs.empty())
            continue;
          std::string Key = printNpuSpec(NpuSpec{{St}});
          if (Seen.insert(Key).second)
            S.Stmts.push_back(std::move(St));
        }
      };
  Walk(K.Body);
  return S;
}

} // namespace transforms
} // namespace akg
