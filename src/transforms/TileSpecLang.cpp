//===- transforms/TileSpecLang.cpp - Fig 4 tile-size language -------------===//
//
// Parser/printer of the tiling policy specification language (paper Fig 4):
//
//   stmt_id       :: "S_" integer
//   tile_size     :: integer
//   tile_spec     :: tile_size @ buffer
//   tile_specs    :: tile_spec | tile_specs , tile_spec
//   stmt_spec     :: stmt_id : tile_specs
//   tiling_policy :: stmt_spec | tiling_policy stmt_spec
//
//===----------------------------------------------------------------------===//

#include "transforms/Tiling.h"

#include <cctype>
#include <sstream>

namespace akg {
namespace transforms {

namespace {

class Lexer {
public:
  explicit Lexer(const std::string &S) : S(S) {}

  void skipSpace() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }
  bool atEnd() {
    skipSpace();
    return Pos >= S.size();
  }
  bool consume(char C) {
    skipSpace();
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }
  bool consumeWord(const char *W) {
    skipSpace();
    size_t L = std::string(W).size();
    if (S.compare(Pos, L, W) == 0) {
      Pos += L;
      return true;
    }
    return false;
  }
  bool parseInt(int64_t &V) {
    skipSpace();
    size_t Start = Pos;
    while (Pos < S.size() && std::isdigit(static_cast<unsigned char>(S[Pos])))
      ++Pos;
    if (Pos == Start)
      return false;
    V = std::stoll(S.substr(Start, Pos - Start));
    return true;
  }
  bool parseIdent(std::string &Id) {
    skipSpace();
    size_t Start = Pos;
    while (Pos < S.size() &&
           (std::isalnum(static_cast<unsigned char>(S[Pos])) || S[Pos] == '_'))
      ++Pos;
    if (Pos == Start)
      return false;
    Id = S.substr(Start, Pos - Start);
    return true;
  }
  size_t position() const { return Pos; }

private:
  const std::string &S;
  size_t Pos = 0;
};

bool isKnownBuffer(const std::string &B) {
  return B == "L1" || B == "UB" || B == "L0A" || B == "L0B" || B == "L0C" ||
         B == "GM";
}

} // namespace

bool parseTilingPolicy(const std::string &Text, TilingPolicy &Out,
                       std::string &Error) {
  Lexer L(Text);
  Out.PerStmt.clear();
  while (!L.atEnd()) {
    if (!L.consumeWord("S_")) {
      Error = "expected statement id 'S_<n>' at offset " +
              std::to_string(L.position());
      return false;
    }
    int64_t Id;
    if (!L.parseInt(Id)) {
      Error = "expected integer after 'S_'";
      return false;
    }
    if (!L.consume(':')) {
      Error = "expected ':' after statement id";
      return false;
    }
    StmtTileSpec Spec;
    do {
      TileSpecEntry E;
      if (!L.parseInt(E.Size) || E.Size <= 0) {
        Error = "expected positive tile size";
        return false;
      }
      if (!L.consume('@')) {
        Error = "expected '@buffer' after tile size";
        return false;
      }
      if (!L.parseIdent(E.BufferName) || !isKnownBuffer(E.BufferName)) {
        Error = "unknown buffer name in tile spec";
        return false;
      }
      Spec.Entries.push_back(std::move(E));
    } while (L.consume(','));
    Out.PerStmt[static_cast<unsigned>(Id)] = std::move(Spec);
  }
  if (Out.PerStmt.empty()) {
    Error = "empty tiling policy";
    return false;
  }
  return true;
}

std::string printTilingPolicy(const TilingPolicy &P) {
  std::ostringstream OS;
  bool FirstStmt = true;
  for (const auto &[Id, Spec] : P.PerStmt) {
    if (!FirstStmt)
      OS << "  ";
    FirstStmt = false;
    OS << "S_" << Id << ": ";
    for (unsigned I = 0; I < Spec.Entries.size(); ++I)
      OS << (I ? ", " : "") << Spec.Entries[I].Size << "@"
         << Spec.Entries[I].BufferName;
  }
  return OS.str();
}

} // namespace transforms
} // namespace akg
