//===- transforms/Tiling.cpp - Loop tiling on schedule trees --------------===//

#include "transforms/Tiling.h"

#include <cassert>

namespace akg {
namespace transforms {

using namespace sched;

TreeNode *tileBand(TreeNode *Band, const std::vector<int64_t> &Sizes) {
  assert(Band->Kind == NodeKind::Band && "tileBand expects a band");
  unsigned W = Band->bandWidth();
  assert(Sizes.size() == W && "one tile size per band row");

  // Point band inherits the original payload and children.
  auto Point = std::make_unique<TreeNode>();
  Point->Kind = NodeKind::Band;
  Point->Partial = Band->Partial;
  Point->Permutable = Band->Permutable;
  Point->Coincident = Band->Coincident;
  Point->Children = std::move(Band->Children);
  for (auto &C : Point->Children)
    C->Parent = Point.get();
  Band->Children.clear();

  // Tile band: same rows with floor denominators.
  for (auto &[Id, SS] : Band->Partial) {
    (void)Id;
    for (unsigned R = 0; R < W; ++R) {
      assert(Sizes[R] >= 1 && "tile size must be positive");
      SS.Rows[R].Denom = SS.Rows[R].Denom * Sizes[R];
    }
  }
  Band->addChild(std::move(Point));
  return Band->child(0);
}

std::vector<int64_t> TilingPolicy::sizesFor(unsigned StmtId,
                                            unsigned Dims) const {
  std::vector<int64_t> Sizes(Dims, 1);
  auto It = PerStmt.find(StmtId);
  if (It == PerStmt.end())
    return Sizes;
  for (unsigned I = 0; I < Dims && I < It->second.Entries.size(); ++I)
    Sizes[I] = It->second.Entries[I].Size;
  return Sizes;
}

} // namespace transforms
} // namespace akg
