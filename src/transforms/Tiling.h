//===- transforms/Tiling.h - Loop tiling on schedule trees ------*- C++ -*-===//
//
// Tiling of band nodes (Sec 4.2): a band's rows are split into tile loops
// (quasi-affine floor rows) and point loops (the original rows). Tile
// shapes on intermediate iteration spaces are constructed separately by
// the reverse strategy (see Fusion.h); this file covers the live-out
// rectangular tiling, hierarchical (multi-level) tiling for the Cube unit,
// and the tile-size specification language of Fig 4.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_TRANSFORMS_TILING_H
#define AKG_TRANSFORMS_TILING_H

#include "ir/PolyExtract.h"
#include "schedule/ScheduleTree.h"

#include <map>
#include <string>
#include <vector>

namespace akg {
namespace transforms {

/// Splits \p Band in place into a tile band (floor rows with the given
/// sizes) whose single child is the point band carrying the original rows
/// and children. Size 1 entries leave that dimension untiled at the tile
/// level (the floor row is still emitted with denominator 1 and is later
/// simplified away). Returns the point band.
sched::TreeNode *tileBand(sched::TreeNode *Band,
                          const std::vector<int64_t> &Sizes);

/// One tile-size entry of the Fig 4 language: "size @ buffer".
struct TileSpecEntry {
  int64_t Size = 1;
  std::string BufferName; // L1, UB, L0A, L0B, L0C
};

/// Per-statement tiling policy.
struct StmtTileSpec {
  std::vector<TileSpecEntry> Entries; // one per tiled loop dimension
};

/// A full tiling policy: statement id -> specification.
struct TilingPolicy {
  std::map<unsigned, StmtTileSpec> PerStmt;

  /// Tile sizes for a statement, defaulting to all-1 (untiled).
  std::vector<int64_t> sizesFor(unsigned StmtId, unsigned Dims) const;
};

/// Parses the Fig 4 specification language, e.g.
///   "S_2: 32@L1, 32@L1  S_4: 64@UB"
/// Returns false (with an error message) on malformed input; tile shapes
/// and validity are not the user's burden - the polyhedral construction
/// guarantees them (Sec 4.2).
bool parseTilingPolicy(const std::string &Text, TilingPolicy &Out,
                       std::string &Error);

std::string printTilingPolicy(const TilingPolicy &P);

} // namespace transforms
} // namespace akg

#endif // AKG_TRANSFORMS_TILING_H
