//===- verify/Generator.cpp - Structured random module generator ----------===//

#include "verify/Generator.h"

#include <algorithm>
#include <cassert>

namespace akg {
namespace verify {

using namespace ir;

namespace {

/// xorshift64* - deterministic, process-independent (no std::mt19937 so the
/// stream is pinned by this file, not the standard library).
struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed * 0x9E3779B97F4A7C15ull + 0xA5A5A5A5ull) {
    next();
  }
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S * 0x2545F4914F6CDD1Dull;
  }
  int64_t range(int64_t Lo, int64_t Hi) { // inclusive
    assert(Hi >= Lo);
    return Lo + int64_t(next() % uint64_t(Hi - Lo + 1));
  }
  bool chance(int Pct) { return range(0, 99) < Pct; }
};

int64_t numElems(const std::vector<int64_t> &Shape) {
  int64_t N = 1;
  for (int64_t D : Shape)
    N *= D;
  return N;
}

struct Builder {
  Module M;
  Rng R;
  const GenOptions &O;
  int64_t TotalElems = 0;
  std::vector<Tensor> Pool;
  unsigned NextOp = 0, NextIn = 0;

  Builder(uint64_t Seed, const GenOptions &Opts) : R(Seed), O(Opts) {}

  std::string opName() { return "op" + std::to_string(NextOp++); }

  bool withinBudget(const std::vector<int64_t> &Shape) const {
    int64_t N = numElems(Shape);
    return N <= O.MaxTensorElems && TotalElems + N <= O.MaxTotalElems;
  }

  Tensor input(std::vector<int64_t> Shape, DType T = DType::F16) {
    // Theme seeders sample dims from fixed ranges; clamp to the per-tensor
    // budget by halving the largest dim (deterministic, and independent of
    // pool state so same-shape inputs stay same-shape).
    while (numElems(Shape) > O.MaxTensorElems) {
      auto It = std::max_element(Shape.begin(), Shape.end());
      if (*It <= 1)
        break;
      *It = (*It + 1) / 2;
    }
    Tensor In =
        M.placeholder("in" + std::to_string(NextIn++), Shape, T);
    TotalElems += In->numElements();
    Pool.push_back(In);
    return In;
  }

  Tensor emit(const std::string &Name, std::vector<int64_t> Shape,
              const std::function<Expr(const std::vector<Expr> &)> &Fn,
              DType T = DType::F16) {
    Tensor Out = M.compute(Name, std::move(Shape), Fn, T);
    TotalElems += Out->numElements();
    Pool.push_back(Out);
    return Out;
  }

  /// A same-shape partner for \p A from the pool (any dtype), or null.
  Tensor partner(const Tensor &A) {
    std::vector<Tensor> Cands;
    for (const Tensor &T : Pool)
      if (T != A && T->Shape == A->Shape)
        Cands.push_back(T);
    if (Cands.empty())
      return nullptr;
    return Cands[size_t(R.range(0, int64_t(Cands.size()) - 1))];
  }

  /// A pool tensor whose shape is a strict suffix of \p A's shape (for
  /// broadcasting along leading axes), or null.
  Tensor suffixOperand(const Tensor &A) {
    std::vector<Tensor> Cands;
    for (const Tensor &T : Pool) {
      if (T->Shape.size() >= A->Shape.size() || T->Shape.empty())
        continue;
      bool Suffix = true;
      size_t Off = A->Shape.size() - T->Shape.size();
      for (size_t I = 0; I < T->Shape.size(); ++I)
        Suffix &= T->Shape[I] == A->Shape[Off + I];
      if (Suffix)
        Cands.push_back(T);
    }
    if (Cands.empty())
      return nullptr;
    return Cands[size_t(R.range(0, int64_t(Cands.size()) - 1))];
  }

  Expr binaryOf(Expr A, Expr B) {
    switch (R.range(0, 4)) {
    case 0:
      return add(std::move(A), std::move(B));
    case 1:
      return mul(std::move(A), std::move(B));
    case 2:
      return sub(std::move(A), std::move(B));
    case 3:
      return minE(std::move(A), std::move(B));
    default:
      return maxE(std::move(A), std::move(B));
    }
  }

  const char *intrinsicOf() {
    static const char *Fns[] = {"relu", "abs", "sigmoid", "tanh"};
    return Fns[R.range(0, 3)];
  }

  /// Appends one random op reading \p A (and possibly other pool
  /// tensors). Returns the new tensor, or null when no variant fit the
  /// budget/shape constraints.
  Tensor randomOp(const Tensor &A) {
    int Kind = int(R.range(0, 7));
    const std::vector<int64_t> &S = A->Shape;
    std::string Name = opName();
    switch (Kind) {
    case 0: { // same-shape binary
      Tensor B = partner(A);
      if (!B || !withinBudget(S))
        break;
      return emit(Name, S, [&](const std::vector<Expr> &Ix) {
        return binaryOf(tensorRead(A, Ix), tensorRead(B, Ix));
      });
    }
    case 1: { // broadcast a suffix-shaped operand
      Tensor B = suffixOperand(A);
      if (!B || !withinBudget(S))
        break;
      size_t Off = S.size() - B->Shape.size();
      return emit(Name, S, [&](const std::vector<Expr> &Ix) {
        std::vector<Expr> BIx(Ix.begin() + long(Off), Ix.end());
        return add(tensorRead(A, Ix), tensorRead(B, BIx));
      });
    }
    case 2: { // halo: shifted read along axis 0 into a smaller output
      if (S.empty() || S[0] <= 4)
        break;
      std::vector<int64_t> Sm = S;
      int64_t Shift = R.range(1, 2);
      Sm[0] -= Shift;
      if (!withinBudget(Sm))
        break;
      return emit(Name, Sm, [&](const std::vector<Expr> &Ix) {
        std::vector<Expr> Hi = Ix;
        Hi[0] = add(Ix[0], intImm(Shift));
        return add(tensorRead(A, Ix), tensorRead(A, Hi));
      });
    }
    case 3: { // reduce the last axis
      if (S.size() < 2)
        break;
      std::vector<int64_t> Red(S.begin(), S.end() - 1);
      if (!withinBudget(Red))
        break;
      ReduceKind RK = R.chance(60) ? ReduceKind::Sum
                                   : (R.chance(50) ? ReduceKind::Max
                                                   : ReduceKind::Min);
      std::string KName = Name + "_k";
      IterVar K = M.reduceAxis(S.back(), KName);
      return emit(
          Name, Red,
          [&](const std::vector<Expr> &Ix) {
            std::vector<Expr> RIx = Ix;
            RIx.push_back(var(KName));
            return reduce(RK, tensorRead(A, RIx), {K});
          },
          DType::F32);
    }
    case 4: { // cast round-trip
      if (!withinBudget(S))
        break;
      DType To = A->Type == DType::F32 ? DType::F16 : DType::F32;
      return emit(
          Name, S,
          [&](const std::vector<Expr> &Ix) {
            return cast(To, tensorRead(A, Ix));
          },
          To);
    }
    case 5: { // select guard (clamp negatives via a comparison)
      if (!withinBudget(S))
        break;
      return emit(Name, S, [&](const std::vector<Expr> &Ix) {
        Expr V = tensorRead(A, Ix);
        return select(cmp(ExprKind::CmpLT, V, floatImm(0.0)),
                      mul(V, floatImm(0.5)), V);
      });
    }
    case 6: { // affine scale + shift by immediates
      if (!withinBudget(S))
        break;
      double Scale = double(R.range(-3, 3)) / 2.0;
      double Shift = double(R.range(-2, 2));
      return emit(Name, S, [&](const std::vector<Expr> &Ix) {
        return add(mul(tensorRead(A, Ix), floatImm(Scale)),
                   floatImm(Shift));
      });
    }
    default: { // unary intrinsic
      if (!withinBudget(S))
        break;
      const char *Fn = intrinsicOf();
      return emit(Name, S, [&](const std::vector<Expr> &Ix) {
        return call(Fn, {tensorRead(A, Ix)}, DType::F16);
      });
    }
    }
    return nullptr;
  }

  /// Appends \p N random ops, each reading a random pool tensor.
  void filler(unsigned N) {
    for (unsigned I = 0; I < N; ++I) {
      const Tensor &A = Pool[size_t(R.range(0, int64_t(Pool.size()) - 1))];
      randomOp(A);
    }
  }

  Tensor matmul(const Tensor &A, const Tensor &B) {
    assert(A->Shape.size() == 2 && B->Shape.size() == 2 &&
           A->Shape[1] == B->Shape[0]);
    std::string Name = opName();
    std::string KName = Name + "_k";
    IterVar K = M.reduceAxis(A->Shape[1], KName);
    return emit(
        Name, {A->Shape[0], B->Shape[1]},
        [&](const std::vector<Expr> &Ix) {
          return reduce(ReduceKind::Sum,
                        mul(tensorRead(A, {Ix[0], var(KName)}),
                            tensorRead(B, {var(KName), Ix[1]})),
                        {K});
        },
        DType::F32);
  }

  Tensor conv(const Tensor &I, const Tensor &W, int64_t Stride,
              int64_t Pad) {
    int64_t N = I->Shape[0], Ci = I->Shape[1], H = I->Shape[2],
            Wd = I->Shape[3];
    int64_t Co = W->Shape[0], KH = W->Shape[2], KW = W->Shape[3];
    int64_t Ho = (H + 2 * Pad - KH) / Stride + 1;
    int64_t Wo = (Wd + 2 * Pad - KW) / Stride + 1;
    std::string Name = opName();
    IterVar Rc = M.reduceAxis(Ci, Name + "_rc");
    IterVar Rh = M.reduceAxis(KH, Name + "_rh");
    IterVar Rw = M.reduceAxis(KW, Name + "_rw");
    return emit(
        Name, {N, Co, Ho, Wo},
        [&](const std::vector<Expr> &Ix) {
          Expr Hh = sub(add(mul(Ix[2], intImm(Stride)), var(Name + "_rh")),
                        intImm(Pad));
          Expr Ww = sub(add(mul(Ix[3], intImm(Stride)), var(Name + "_rw")),
                        intImm(Pad));
          Expr Read = tensorRead(I, {Ix[0], var(Name + "_rc"), Hh, Ww});
          if (Pad > 0) {
            Expr InB = binary(
                ExprKind::And,
                binary(ExprKind::And, cmp(ExprKind::CmpLE, intImm(0), Hh),
                       cmp(ExprKind::CmpLT, Hh, intImm(H))),
                binary(ExprKind::And, cmp(ExprKind::CmpLE, intImm(0), Ww),
                       cmp(ExprKind::CmpLT, Ww, intImm(Wd))));
            Read = select(InB, Read, floatImm(0.0));
          }
          return reduce(ReduceKind::Sum,
                        mul(Read, tensorRead(W, {Ix[1], var(Name + "_rc"),
                                                 var(Name + "_rh"),
                                                 var(Name + "_rw")})),
                        {Rc, Rh, Rw});
        },
        DType::F32);
  }
};

void seedElementwise2D(Builder &B) {
  int64_t D0 = B.R.range(3, 24), D1 = B.R.range(4, 40);
  B.input({D0, D1});
  B.input({D0, D1});
  B.input({D1}); // broadcast row
}

void seedMatmul(Builder &B) {
  int64_t M = B.R.range(2, 12), K = B.R.range(2, 12), N = B.R.range(2, 12);
  Tensor A = B.input({M, K});
  Tensor Bt = B.input({K, N});
  Tensor C = B.matmul(A, Bt);
  if (B.R.chance(60)) { // bias epilogue
    Tensor Bias = B.input({N}, DType::F32);
    B.emit(B.opName(), {M, N}, [&](const std::vector<Expr> &Ix) {
      return add(tensorRead(C, Ix), tensorRead(Bias, {Ix[1]}));
    });
  }
}

void seedConv(Builder &B) {
  int64_t Ci = B.R.range(1, 3), H = B.R.range(4, 9), W = B.R.range(4, 9);
  int64_t Co = B.R.range(1, 4), KH = B.R.range(1, 3);
  int64_t Stride = B.R.chance(25) ? 2 : 1;
  int64_t Pad = B.R.chance(50) ? 1 : 0;
  if (KH + 2 * Pad > H)
    KH = 1;
  Tensor I = B.input({1, Ci, H, W});
  Tensor Wt = B.input({Co, Ci, KH, KH});
  Tensor C = B.conv(I, Wt, Stride, Pad);
  if (B.R.chance(60)) { // relu epilogue
    B.emit(B.opName(), C->Shape, [&](const std::vector<Expr> &Ix) {
      return call("relu", {tensorRead(C, Ix)}, DType::F16);
    });
  }
}

void seedReduction3D(Builder &B) {
  int64_t D0 = B.R.range(2, 8), D1 = B.R.range(2, 10),
          D2 = B.R.range(2, 12);
  Tensor A = B.input({D0, D1, D2});
  B.input({D1, D2}); // broadcast plane
  Tensor T = B.randomOp(A);
  // The random op may have reduced the rank; keep a rank >= 2 base so the
  // forced reduction below never produces a scalar output.
  const Tensor &Base = (T && T->Shape.size() >= 2) ? T : A;
  // Force at least one reduction chain on top.
  std::string Name = B.opName();
  std::string KName = Name + "_k";
  IterVar K = B.M.reduceAxis(Base->Shape.back(), KName);
  ReduceKind RK = B.R.chance(50)
                      ? ReduceKind::Sum
                      : (B.R.chance(50) ? ReduceKind::Max : ReduceKind::Min);
  std::vector<int64_t> Red(Base->Shape.begin(), Base->Shape.end() - 1);
  B.emit(
      Name, Red,
      [&](const std::vector<Expr> &Ix) {
        std::vector<Expr> RIx = Ix;
        RIx.push_back(var(KName));
        return reduce(RK, tensorRead(Base, RIx), {K});
      },
      DType::F32);
}

void seedElementwise4D(Builder &B) {
  int64_t D0 = B.R.range(1, 3), D1 = B.R.range(2, 4), D2 = B.R.range(3, 8),
          D3 = B.R.range(3, 8);
  B.input({D0, D1, D2, D3});
  B.input({D0, D1, D2, D3});
  B.input({D2, D3}); // broadcast plane
}

void seedChain1D(Builder &B) {
  int64_t N = B.R.range(8, 64);
  B.input({N});
  B.input({N});
}

void seedMultiOutput(Builder &B) {
  int64_t D0 = B.R.range(3, 12), D1 = B.R.range(4, 16);
  Tensor A = B.input({D0, D1});
  Tensor Bt = B.input({D0, D1});
  // Several sibling branches off the same producers; whatever stays
  // unconsumed escapes the module, so this reliably yields >= 2 outputs.
  Tensor S = B.emit(B.opName(), {D0, D1}, [&](const std::vector<Expr> &Ix) {
    return add(tensorRead(A, Ix), tensorRead(Bt, Ix));
  });
  B.emit(B.opName(), {D0, D1}, [&](const std::vector<Expr> &Ix) {
    return call("relu", {tensorRead(S, Ix)}, DType::F16);
  });
  B.emit(B.opName(), {D0, D1}, [&](const std::vector<Expr> &Ix) {
    return mul(tensorRead(S, Ix), tensorRead(A, Ix));
  });
}

/// Dynamic-shape seeds (DESIGN.md 4k): a small module whose leading
/// extent carries a shape-symbol mark, biased toward bucket boundaries
/// (1/15/16/17/63/64/65/255/256) so admission, rebinding, and both sides
/// of every bucket edge get exercised. The random filler ops appended
/// afterwards read the marked tensors with arbitrary patterns, so some
/// seeds stay in the supported pointwise class (bucketed serving) while
/// others are rejected into the per-shape fallback - the oracle's
/// dynshape configs must pass either way.
void seedDynShape(Builder &B) {
  static const int64_t Edges[] = {1, 15, 16, 17, 63, 64, 65, 255, 256};
  int64_t N = B.R.chance(60) ? Edges[B.R.range(0, 8)] : B.R.range(1, 256);
  int64_t C = B.R.range(8, 16);
  switch (B.R.range(0, 2)) {
  case 0: { // elementwise chain, two marked inputs sharing one symbol
    Tensor A = B.input({N, C});
    Tensor Bt = B.input({N, C});
    B.M.markDynamicDim(A, 0, "n");
    B.M.markDynamicDim(Bt, 0, "n");
    Tensor S = B.emit(B.opName(), {N, C}, [&](const std::vector<Expr> &Ix) {
      return add(tensorRead(A, Ix), tensorRead(Bt, Ix));
    });
    B.emit(B.opName(), {N, C}, [&](const std::vector<Expr> &Ix) {
      return call("relu", {tensorRead(S, Ix)}, DType::F16);
    });
    break;
  }
  case 1: { // reduction over the static trailing axis
    Tensor A = B.input({N, C}, DType::F32);
    B.M.markDynamicDim(A, 0, "n");
    IterVar K = B.M.reduceAxis(C, "dk");
    B.emit(
        B.opName(), {N},
        [&](const std::vector<Expr> &Ix) {
          return reduce(ReduceKind::Sum,
                        tensorRead(A, {Ix[0], var("dk")}), {K});
        },
        DType::F32);
    break;
  }
  default: { // matmul with dynamic rows (cube path skeleton)
    Tensor A = B.input({N, 16});
    Tensor W = B.input({16, 16});
    B.M.markDynamicDim(A, 0, "m");
    IterVar K = B.M.reduceAxis(16, "mk");
    B.emit(B.opName(), {N, 16}, [&](const std::vector<Expr> &Ix) {
      return reduce(ReduceKind::Sum,
                    mul(tensorRead(A, {Ix[0], var("mk")}),
                        tensorRead(W, {var("mk"), Ix[1]})),
                    {K});
    });
    break;
  }
  }
}

} // namespace

const char *themeName(Theme T) {
  switch (T) {
  case Theme::Auto:
    return "auto";
  case Theme::Elementwise2D:
    return "elementwise2d";
  case Theme::Matmul:
    return "matmul";
  case Theme::Conv:
    return "conv";
  case Theme::Reduction3D:
    return "reduction3d";
  case Theme::Elementwise4D:
    return "elementwise4d";
  case Theme::Chain1D:
    return "chain1d";
  case Theme::MultiOutput:
    return "multioutput";
  case Theme::DynShape:
    return "dynshape";
  }
  return "?";
}

Theme themeForSeed(uint64_t Seed) {
  static const Theme Cycle[] = {
      Theme::Elementwise2D, Theme::Matmul,       Theme::Conv,
      Theme::Reduction3D,   Theme::Elementwise4D, Theme::Chain1D,
      Theme::MultiOutput};
  return Cycle[Seed % (sizeof(Cycle) / sizeof(Cycle[0]))];
}

ir::Module generateModule(uint64_t Seed, const GenOptions &Opts) {
  Theme T = Opts.ThemeSel == Theme::Auto ? themeForSeed(Seed) : Opts.ThemeSel;
  Builder B(Seed, Opts);
  switch (T) {
  case Theme::Auto:
  case Theme::Elementwise2D:
    seedElementwise2D(B);
    break;
  case Theme::Matmul:
    seedMatmul(B);
    break;
  case Theme::Conv:
    seedConv(B);
    break;
  case Theme::Reduction3D:
    seedReduction3D(B);
    break;
  case Theme::Elementwise4D:
    seedElementwise4D(B);
    break;
  case Theme::Chain1D:
    seedChain1D(B);
    break;
  case Theme::MultiOutput:
    seedMultiOutput(B);
    break;
  case Theme::DynShape:
    seedDynShape(B);
    break;
  }
  unsigned Extra =
      unsigned(B.R.range(int64_t(Opts.MinOps), int64_t(Opts.MaxOps)));
  B.filler(Extra);
  // A module must have at least one op; fall back to a plain copy if every
  // random variant was rejected (tight budgets).
  if (B.M.ops().empty()) {
    const Tensor &A = B.Pool.front();
    B.emit(B.opName(), A->Shape, [&](const std::vector<Expr> &Ix) {
      return call("relu", {tensorRead(A, Ix)}, DType::F16);
    });
  }
  return std::move(B.M);
}

std::string describeModule(uint64_t Seed, const ir::Module &M) {
  int64_t Elems = 0;
  for (const Tensor &T : M.allTensors())
    Elems += T->numElements();
  // Shape marks identify a module generated under the explicit DynShape
  // theme (it is not in the Auto cycle, so themeForSeed cannot name it).
  const char *Name = ir::hasDynamicDims(M) ? themeName(Theme::DynShape)
                                           : themeName(themeForSeed(Seed));
  return "seed " + std::to_string(Seed) + ": theme=" + Name +
         " ops=" + std::to_string(M.ops().size()) +
         " elems=" + std::to_string(Elems);
}

} // namespace verify
} // namespace akg
