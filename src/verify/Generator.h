//===- verify/Generator.h - Structured random module generator --*- C++ -*-===//
//
// CSmith/NNSmith-style structured generation of random DSL modules for
// differential testing (DESIGN.md 4e). Each seed deterministically maps to
// one module; seeds cycle through themes so a contiguous seed range covers
// every workload class the compiler supports: 1-4-D elementwise DAGs,
// broadcasts, shifted (halo) reads, row/column reductions with every
// combiner, matmul (cube/fractal path), conv with and without padding
// (img2col path), casts, select guards, and multi-output fused subgraphs.
// Size budgets keep functional simulation and the reference evaluator fast
// enough to sweep hundreds of seeds per second.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_VERIFY_GENERATOR_H
#define AKG_VERIFY_GENERATOR_H

#include "ir/Dsl.h"

#include <string>

namespace akg {
namespace verify {

/// Workload class a seed expands into. Theme::Auto derives the theme from
/// the seed so any seed range covers all classes.
enum class Theme {
  Auto,
  Elementwise2D, // binary/unary/broadcast/halo chains (the classic fuzz)
  Matmul,        // matmul + elementwise epilogue
  Conv,          // small conv (pad 0/1) + epilogue
  Reduction3D,   // 3-D tensors, reductions with Sum/Max/Min
  Elementwise4D, // rank-4 chains with broadcasts
  Chain1D,       // rank-1 long chains
  MultiOutput,   // several unconsumed leaves -> multi-output module
  DynShape,      // dynamic-shape marks on a bucket-edge-biased extent
};

const char *themeName(Theme T);

struct GenOptions {
  Theme ThemeSel = Theme::Auto;
  /// Extra ops appended after the theme skeleton (random elementwise).
  unsigned MinOps = 2;
  unsigned MaxOps = 7;
  /// Per-tensor element budget; dims are resampled until it holds.
  int64_t MaxTensorElems = 4096;
  /// Module-wide element budget; generation stops adding ops beyond it.
  int64_t MaxTotalElems = 16384;
};

/// The theme seed \p Seed expands under Theme::Auto. DynShape is
/// deliberately NOT part of the Auto cycle: adding it would remap every
/// existing seed's module (the 100-seed corpus must stay bit-stable), so
/// dynamic-shape fuzzing opts in explicitly via GenOptions::ThemeSel
/// (akg-fuzz --dynshape).
Theme themeForSeed(uint64_t Seed);

/// Deterministically generates one module for \p Seed. Same seed + same
/// options -> structurally identical module (stable across processes).
ir::Module generateModule(uint64_t Seed, const GenOptions &Opts = {});

/// One-line description ("seed 42: theme=matmul ops=5 elems=1234") for
/// logs and corpus files.
std::string describeModule(uint64_t Seed, const ir::Module &M);

} // namespace verify
} // namespace akg

#endif // AKG_VERIFY_GENERATOR_H
