//===- verify/Oracle.cpp - Config-matrix differential oracle --------------===//

#include "verify/Oracle.h"

#include "akg/CompileService.h"
#include "akg/KernelCache.h"
#include "composite/Composite.h"
#include "ir/PolyExtract.h"
#include "sim/DynRun.h"
#include "sim/SimtRun.h"
#include "support/Env.h"
#include "target/Codegen.h"

#include <cstdio>

namespace akg {
namespace verify {

using namespace ir;

std::string OracleReport::firstFailure() const {
  for (const ConfigOutcome &O : Outcomes)
    if (!O.Pass)
      return O.Config + ": " + O.Detail;
  return "";
}

std::string OracleReport::str() const {
  std::string S;
  for (const ConfigOutcome &O : Outcomes) {
    char Buf[160];
    std::snprintf(Buf, sizeof Buf, "%-18s %s  err=%.3g  bits=%016llx  %s\n",
                  O.Config.c_str(), O.Pass ? "PASS" : "FAIL", O.MaxErr,
                  static_cast<unsigned long long>(O.OutputBits),
                  O.Detail.c_str());
    S += Buf;
  }
  return S;
}

namespace {

/// Uniform manual tile policy: tile every axis of the live-out statement
/// with min(extent, Size) at UB (the same shape BenchCommon and the tuner
/// use for manual specs).
AkgOptions tiledOptions(const ir::Module &M, int64_t Size) {
  AkgOptions O;
  ir::PolyProgram P = ir::extractPolyProgram(M);
  if (P.Stmts.empty())
    return O;
  const ir::PolyStmt &Live = P.Stmts.back();
  transforms::StmtTileSpec Spec;
  for (const IterVar &IV : Live.Op->Axis)
    Spec.Entries.push_back(
        transforms::TileSpecEntry{std::min(IV.Extent, Size), "UB"});
  transforms::TilingPolicy Pol;
  Pol.PerStmt[Live.Id] = Spec;
  O.ManualTiles = Pol;
  return O;
}

} // namespace

std::vector<std::pair<std::string, AkgOptions>>
oracleConfigs(const ir::Module &M, MatrixLevel Level) {
  std::vector<std::pair<std::string, AkgOptions>> Cfgs;
  Cfgs.emplace_back("default", AkgOptions{});
  {
    AkgOptions O;
    O.EnablePostTilingFusion = false;
    Cfgs.emplace_back("nofuse", O);
  }
  Cfgs.emplace_back("tile4", tiledOptions(M, 4));
  {
    AkgOptions O;
    O.FailStage = Stage::Storage;
    Cfgs.emplace_back("fail_storage", O);
  }
  if (Level == MatrixLevel::Quick)
    return Cfgs;
  {
    AkgOptions O;
    O.EnableIntraTile = false;
    Cfgs.emplace_back("nointratile", O);
  }
  {
    AkgOptions O;
    O.EnableInlining = true;
    Cfgs.emplace_back("inline", O);
  }
  Cfgs.emplace_back("tile8", tiledOptions(M, 8));
  static const Stage Rungs[] = {Stage::Scheduler,    Stage::Tiling,
                                Stage::Fusion,       Stage::IntraTile,
                                Stage::Vectorize,    Stage::DoubleBuffer,
                                Stage::Sync};
  for (Stage S : Rungs) {
    AkgOptions O;
    O.FailStage = S;
    Cfgs.emplace_back(std::string("fail_") + stageName(S), O);
  }
  return Cfgs;
}

OracleReport runOracle(const ir::Module &M, const OracleOptions &Opts) {
  const sim::MachineSpec &Spec =
      Opts.Machine ? *Opts.Machine : sim::MachineSpec::ascend910();
  OracleReport Rep;

  auto Check = [&](const std::string &Name, CompileResult R) {
    ConfigOutcome Out;
    Out.Config = Name;
    if (Opts.MutateKernel)
      Opts.MutateKernel(M, Name, R.Kernel);
    std::string Cap = cce::checkBufferCapacities(R.Kernel, Spec);
    // diffBoundAgainstReference pads/slices when R was served from a
    // dynamic-shape bucket skeleton (determinism sweep below) and is a
    // plain kernel-vs-evaluator diff otherwise.
    sim::FunctionalDiff D = [&] {
      sim::SimResult SR;
      return sim::diffBoundAgainstReference(R, M, Spec, Opts.DataSeed, &SR,
                                            &Out.OutputBits);
    }();
    Out.MaxErr = D.MaxAbsErr;
    if (!Cap.empty()) {
      Out.Pass = false;
      Out.Detail = "buffer capacity: " + Cap;
    } else if (!D.within(Opts.Tolerance)) {
      Out.Pass = false;
      Out.Detail = D.str();
    } else {
      Out.Pass = true;
    }
    Rep.Pass &= Out.Pass;
    Rep.Outcomes.push_back(Out);
    return Out;
  };

  // --- Functional matrix: every config vs the reference evaluator -------
  // Kernel text is captured pre-MutateKernel so the round-trip below
  // diffs against the real compiler output, not an injected miscompile.
  std::vector<std::pair<std::string, std::string>> BaseKernels;
  for (const auto &[Name, O] : oracleConfigs(M, Opts.Level)) {
    CompileResult R = compileWithAkg(M, O, "oracle_" + Name);
    BaseKernels.emplace_back(Name, cce::printKernel(R.Kernel));
    Check(Name, std::move(R));
  }

  // --- Composite JSON round-trip differential ---------------------------
  // parse(serialize(M)) must rebuild a structurally identical module:
  // same kernel-cache fingerprint, and byte-identical kernel text under
  // every functional config above.
  if (Opts.JsonRoundTrip) {
    ConfigOutcome Out;
    Out.Config = "json_roundtrip";
    Out.Pass = true;
    std::string Payload = composite::moduleToCompositeJson(M, "oracle_rt");
    composite::FrontendResult F = composite::loadComposite(Payload);
    if (!F.ok()) {
      Out.Pass = false;
      Out.Detail =
          "frontend rejected serialized module: " + F.Outcome.str();
    } else if (!(makeCacheKey(M, AkgOptions{}) ==
                 makeCacheKey(*F.Mod, AkgOptions{}))) {
      Out.Pass = false;
      Out.Detail = "cache fingerprint differs after JSON round-trip";
    } else {
      for (const auto &[Name, O] : oracleConfigs(*F.Mod, Opts.Level)) {
        CompileResult R = compileWithAkg(*F.Mod, O, "oracle_" + Name);
        const std::string *Base = nullptr;
        for (const auto &[BN, Text] : BaseKernels)
          if (BN == Name)
            Base = &Text;
        if (Base && cce::printKernel(R.Kernel) != *Base) {
          Out.Pass = false;
          Out.Detail =
              "kernel text differs after JSON round-trip (config " + Name +
              ")";
          break;
        }
      }
    }
    Rep.Pass &= Out.Pass;
    Rep.Outcomes.push_back(Out);
  }

  // --- SIMT cross-target differential (DESIGN.md 4l) --------------------
  // The same module compiled for the SIMT backend must agree with the
  // reference evaluator within tolerance, fit the SIMT capacities (the
  // retry ladder owns any degradation), and relower deterministically.
  // AKG_TARGET is saved/unset around the block so an ambient override
  // cannot silently turn this into a CCE-vs-CCE diff.
  if (Opts.SimtDifferential) {
    std::optional<std::string> Saved = env::get("AKG_TARGET");
    env::unset("AKG_TARGET");
    ConfigOutcome Out;
    Out.Config = "simt_differential";
    Out.Pass = true;
    AkgOptions O;
    O.Target = sim::TargetKind::Simt;
    CompileResult R = compileWithAkg(M, O, "oracle_simt");
    sim::SimtSpec SSpec = sim::SimtSpec::sm80();
    std::string Cap = cce::checkSimtCapacities(R.Kernel, SSpec);
    if (!R.Outcome.isOk()) {
      Out.Pass = false;
      Out.Detail = "simt compile failed: " + R.Outcome.str();
    } else if (R.Kernel.Target != sim::TargetKind::Simt) {
      Out.Pass = false;
      Out.Detail = "kernel did not lower for the simt target";
    } else if (!Cap.empty()) {
      Out.Pass = false;
      Out.Detail = "shared-memory capacity: " + Cap;
    } else {
      sim::FunctionalDiff D = sim::diffSimtAgainstReference(
          R.Kernel, M, SSpec, Opts.DataSeed, nullptr, &Out.OutputBits);
      Out.MaxErr = D.MaxAbsErr;
      if (!D.within(Opts.Tolerance)) {
        Out.Pass = false;
        Out.Detail = "simt kernel vs reference: " + D.str();
      } else {
        CompileResult R2 = compileWithAkg(M, O, "oracle_simt");
        if (cce::printKernel(R2.Kernel) != cce::printKernel(R.Kernel)) {
          Out.Pass = false;
          Out.Detail = "simt kernel text differs across recompiles";
        }
      }
    }
    if (Saved)
      env::set("AKG_TARGET", *Saved);
    Rep.Pass &= Out.Pass;
    Rep.Outcomes.push_back(Out);
  }

  // --- Dynamic-shape differential (DESIGN.md 4k) ------------------------
  // For a module carrying shape-symbol marks: the bucketed serving path
  // (cache canonicalizes to the bucket skeleton, late-bound execution)
  // must match the reference evaluator, and the AKG_DYNSHAPE=0 kill
  // switch must reproduce the plain per-shape compile byte-identically.
  // A module the admission analysis rejects passes trivially: the
  // fallback IS the plain compile, which the functional matrix covers.
  if (ir::hasDynamicDims(M)) {
    std::optional<std::string> Saved = env::get("AKG_DYNSHAPE");
    {
      ConfigOutcome Out;
      Out.Config = "dynshape_bucketed";
      Out.Pass = true;
      env::set("AKG_DYNSHAPE", "1");
      KernelCache Cache;
      CompileResult R = Cache.compileOrGet(M, AkgOptions{}, "oracle_dyn");
      if (!R.Outcome.isOk()) {
        Out.Pass = false;
        Out.Detail = "bucketed compile failed: " + R.Outcome.str();
      } else if (!R.DynShape) {
        Out.Detail = "fallback: per-shape compile (functional matrix)";
      } else {
        sim::FunctionalDiff D = sim::diffBoundAgainstReference(
            R, M, Spec, Opts.DataSeed, nullptr, &Out.OutputBits);
        Out.MaxErr = D.MaxAbsErr;
        if (!D.within(Opts.Tolerance)) {
          Out.Pass = false;
          Out.Detail = "bound kernel vs reference: " + D.str();
        }
      }
      Rep.Pass &= Out.Pass;
      Rep.Outcomes.push_back(Out);
    }
    {
      ConfigOutcome Out;
      Out.Config = "dynshape_killswitch";
      Out.Pass = true;
      env::set("AKG_DYNSHAPE", "0");
      KernelCache Cache;
      CompileResult R0 = Cache.compileOrGet(M, AkgOptions{}, "oracle_dyn");
      CompileResult Plain = compileWithAkg(M, AkgOptions{}, "oracle_dyn");
      if (R0.DynShape) {
        Out.Pass = false;
        Out.Detail = "kill switch did not disable bucketing";
      } else if (cce::printKernel(R0.Kernel) !=
                 cce::printKernel(Plain.Kernel)) {
        Out.Pass = false;
        Out.Detail = "AKG_DYNSHAPE=0 kernel differs from plain compile";
      }
      Rep.Pass &= Out.Pass;
      Rep.Outcomes.push_back(Out);
    }
    if (Saved)
      env::set("AKG_DYNSHAPE", *Saved);
    else
      env::unset("AKG_DYNSHAPE");
  }

  // --- Determinism sweep: 1 vs N threads, cold vs warm cache ------------
  // The three passes must produce byte-identical kernel text and
  // bit-identical functional outputs.
  KernelCache ColdCache1, ColdCacheN;
  AkgOptions Base;
  std::vector<CompileJob> Jobs(3, CompileJob{&M, Base, "oracle_det"});
  CompileServiceOptions S1{1, &ColdCache1};
  CompileServiceOptions SN{Opts.Threads, &ColdCacheN};
  std::vector<CompileResult> A = compileModulesParallel(Jobs, S1);
  std::vector<CompileResult> B = compileModulesParallel(Jobs, SN);
  std::vector<CompileResult> C = compileModulesParallel(Jobs, SN); // warm

  std::string RefText = cce::printKernel(A.front().Kernel);
  ConfigOutcome Det1 = Check("threads1", A.front());
  uint64_t RefBits = Det1.OutputBits;
  struct Pass {
    const char *Name;
    std::vector<CompileResult> *Results;
  } Passes[] = {{"threadsN_cold", &B}, {"threadsN_warm", &C}};
  for (const Pass &P : Passes) {
    ConfigOutcome Out;
    Out.Config = P.Name;
    Out.Pass = true;
    for (const CompileResult &R : *P.Results) {
      if (cce::printKernel(R.Kernel) != RefText) {
        Out.Pass = false;
        Out.Detail = "kernel text differs from 1-thread compile";
        break;
      }
    }
    if (Out.Pass) {
      sim::FunctionalDiff D = sim::diffBoundAgainstReference(
          P.Results->front(), M, Spec, Opts.DataSeed, nullptr,
          &Out.OutputBits);
      Out.MaxErr = D.MaxAbsErr;
      if (Out.OutputBits != RefBits) {
        Out.Pass = false;
        Out.Detail = "output bits differ from 1-thread compile";
      } else if (!D.within(Opts.Tolerance)) {
        Out.Pass = false;
        Out.Detail = D.str();
      }
    }
    Rep.Pass &= Out.Pass;
    Rep.Outcomes.push_back(Out);
  }
  return Rep;
}

} // namespace verify
} // namespace akg
