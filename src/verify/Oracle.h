//===- verify/Oracle.h - Config-matrix differential oracle ------*- C++ -*-===//
//
// The differential-testing oracle (DESIGN.md 4e): one module is compiled
// under a sweep of every compilation knob that must not change semantics -
// post-tiling fusion on/off, intra-tile on/off, preparation inlining,
// several manual tile specs, every degradation rung via
// AkgOptions::FailStage, and a determinism sweep through the compile
// service (1 vs N worker threads, cold vs warm KernelCache). Every kernel
// is simulated functionally; each must match ir::evaluateModule within FP
// tolerance, and the determinism sweep must additionally be bit-for-bit
// identical (same kernel text, same output bits) across thread counts and
// cache temperature. Config sweeps that legitimately reassociate float
// reductions (different tile sizes) are held to the FP tolerance, not to
// bit equality.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_VERIFY_ORACLE_H
#define AKG_VERIFY_ORACLE_H

#include "akg/Compiler.h"
#include "sim/Compare.h"

#include <functional>
#include <string>
#include <vector>

namespace akg {
namespace verify {

/// Quick runs a PR-smoke subset (default, fusion off, one tile spec, one
/// degradation rung, determinism); Full runs the whole matrix.
enum class MatrixLevel { Quick, Full };

struct OracleOptions {
  MatrixLevel Level = MatrixLevel::Full;
  double Tolerance = 2e-2; // F16-grade functional tolerance
  unsigned Threads = 4;    // the N of the 1-vs-N determinism sweep
  uint32_t DataSeed = 1;
  /// Composite-JSON round-trip differential: serialize the module with
  /// composite::moduleToCompositeJson, re-ingest it through the frontend
  /// (parse -> normalize -> lower), and require parse(serialize(M)) to
  /// compile to byte-identical kernel text under every functional config.
  bool JsonRoundTrip = true;
  /// SIMT cross-target differential: compile the module once more with
  /// AkgOptions::Target = Simt, simulate the mapped kernel on the SIMT
  /// machine model, and require the functional result to match
  /// ir::evaluateModule within Tolerance, plus a byte-identical recompile
  /// (SIMT lowering determinism).
  bool SimtDifferential = true;
  /// Machine model; null selects ascend910.
  const sim::MachineSpec *Machine = nullptr;
  /// Post-compile hook applied to each functional config's kernel before
  /// simulation. This is the seam the harness's own self-tests use to
  /// inject deliberate miscompiles and prove the oracle catches them.
  std::function<void(const ir::Module &M, const std::string &Config,
                     cce::Kernel &K)>
      MutateKernel;
};

struct ConfigOutcome {
  std::string Config;
  bool Pass = false;
  double MaxErr = 0;
  uint64_t OutputBits = 0; // FNV over output float bit patterns
  std::string Detail;      // failure explanation
};

struct OracleReport {
  bool Pass = true;
  std::vector<ConfigOutcome> Outcomes;

  /// "config: detail" of the first failing outcome ("" when passing).
  std::string firstFailure() const;
  /// Multi-line human-readable table.
  std::string str() const;
};

/// The named option configurations the oracle sweeps for \p M (functional
/// matrix only; the determinism sweep is built into runOracle).
std::vector<std::pair<std::string, AkgOptions>>
oracleConfigs(const ir::Module &M, MatrixLevel Level);

/// Runs the full differential matrix on one module.
OracleReport runOracle(const ir::Module &M, const OracleOptions &Opts = {});

} // namespace verify
} // namespace akg

#endif // AKG_VERIFY_ORACLE_H
