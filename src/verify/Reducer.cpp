//===- verify/Reducer.cpp - Automatic failing-module reducer --------------===//

#include "verify/Reducer.h"

#include "ir/ModuleUtils.h"

#include <optional>
#include <set>

namespace akg {
namespace verify {

using namespace ir;

namespace {

void collectVarNames(const Expr &E, std::set<std::string> &Out) {
  if (!E)
    return;
  if (E->Kind == ExprKind::Var)
    Out.insert(E->Name);
  for (const Expr &Op : E->Operands)
    collectVarNames(Op, Out);
}

void collectReduceAxisNames(const Expr &E, std::set<std::string> &Out) {
  if (!E)
    return;
  if (E->Kind == ExprKind::Reduce)
    for (const IterVar &IV : E->ReduceAxes)
      Out.insert(IV.Name);
  for (const Expr &Op : E->Operands)
    collectReduceAxisNames(Op, Out);
}

/// Every Var in every body must be an op axis or a reduce axis declared in
/// that body; a mutation that strands a variable would abort evalExpr.
bool freeVarsOk(const Module &M) {
  for (const auto &Op : M.ops()) {
    std::set<std::string> Bound, Used;
    for (const IterVar &IV : Op->Axis)
      Bound.insert(IV.Name);
    collectReduceAxisNames(Op->Body, Bound);
    collectVarNames(Op->Body, Used);
    for (const std::string &V : Used)
      if (!Bound.count(V))
        return false;
  }
  return true;
}

/// Rebuilds \p Old with an optional dropped op (consumers rewired to
/// \p DropRepl), an optional extent remap, and an optional body edit.
/// Unused placeholders are pruned (the first is kept if all would go).
std::optional<Module> rebuild(const Module &Old, const ComputeOp *Drop,
                              const TensorDecl *DropRepl,
                              const std::function<int64_t(int64_t)> &ExtMap,
                              const ComputeOp *EditOp, const Expr &NewBody) {
  auto MapExt = [&](int64_t E) { return ExtMap ? ExtMap(E) : E; };
  // Which tensors are still read by surviving bodies?
  std::set<const TensorDecl *> Used;
  for (const auto &Op : Old.ops()) {
    if (Op.get() == Drop)
      continue;
    const Expr &Body = Op.get() == EditOp ? NewBody : Op->Body;
    for (const Tensor &T : collectReads(Body))
      Used.insert(T.get());
  }
  if (DropRepl)
    Used.insert(DropRepl);

  Module New;
  std::map<const TensorDecl *, Tensor> Remap;
  bool KeptAny = false;
  for (const Tensor &In : Old.inputs())
    if (Used.count(In.get())) {
      std::vector<int64_t> Shape;
      for (int64_t D : In->Shape)
        Shape.push_back(MapExt(D));
      Remap[In.get()] = New.placeholder(In->Name, Shape, In->Type);
      KeptAny = true;
    }
  if (!KeptAny && !Old.inputs().empty()) {
    const Tensor &In = Old.inputs().front();
    std::vector<int64_t> Shape;
    for (int64_t D : In->Shape)
      Shape.push_back(MapExt(D));
    Remap[In.get()] = New.placeholder(In->Name, Shape, In->Type);
  }
  for (const auto &Op : Old.ops()) {
    if (Op.get() == Drop) {
      if (DropRepl) {
        auto It = Remap.find(DropRepl);
        if (It == Remap.end())
          return std::nullopt; // replacement did not precede the drop
        Remap[Op->Output.get()] = It->second;
      }
      continue;
    }
    std::vector<IterVar> Axis = Op->Axis;
    for (IterVar &IV : Axis)
      IV.Extent = MapExt(IV.Extent);
    Expr Body = Op.get() == EditOp ? NewBody : Op->Body;
    Body = mapExpr(Body, Remap, ExtMap ? MapExt
                                       : std::function<int64_t(int64_t)>());
    Remap[Op->Output.get()] =
        New.computeRaw(Op->Name, std::move(Axis), Body, Op->Output->Type);
  }
  if (New.ops().empty())
    return std::nullopt;
  return New;
}

std::optional<Module> tryDropOp(const Module &M, size_t Idx) {
  const ComputeOp *Op = M.ops()[Idx].get();
  bool Consumed = false;
  for (const auto &Other : M.ops())
    if (Other.get() != Op)
      for (const Tensor &T : collectReads(Other->Body))
        if (T.get() == Op->Output.get())
          Consumed = true;
  const TensorDecl *Repl = nullptr;
  if (Consumed) {
    // Prefer one of the dropped op's own same-shape operands, then any
    // earlier same-shape tensor.
    for (const Tensor &T : collectReads(Op->Body))
      if (T->Shape == Op->Output->Shape) {
        Repl = T.get();
        break;
      }
    if (!Repl) {
      for (const Tensor &In : M.inputs())
        if (In->Shape == Op->Output->Shape)
          Repl = In.get();
      for (size_t I = 0; !Repl && I < Idx; ++I)
        if (M.ops()[I]->Output->Shape == Op->Output->Shape)
          Repl = M.ops()[I]->Output.get();
    }
    if (!Repl)
      return std::nullopt;
  }
  return rebuild(M, Op, Repl, nullptr, nullptr, nullptr);
}

std::optional<Module> tryShrinkExtent(const Module &M, int64_t From,
                                      int64_t To) {
  auto ExtMap = [From, To](int64_t E) { return E == From ? To : E; };
  return rebuild(M, nullptr, nullptr, ExtMap, nullptr, nullptr);
}

/// Body-simplification candidates: peel the top node (or the node just
/// under a Reduce) down to one of its operands.
std::vector<Expr> simplifyCandidates(const Expr &Body) {
  std::vector<Expr> Out;
  auto Peel = [&Out](const Expr &E) {
    switch (E->Kind) {
    case ExprKind::Add:
    case ExprKind::Sub:
    case ExprKind::Mul:
    case ExprKind::Div:
    case ExprKind::FloorDiv:
    case ExprKind::Mod:
    case ExprKind::Min:
    case ExprKind::Max:
      Out.push_back(E->Operands[0]);
      Out.push_back(E->Operands[1]);
      break;
    case ExprKind::Call:
    case ExprKind::Cast:
      if (!E->Operands.empty())
        Out.push_back(E->Operands[0]);
      break;
    case ExprKind::Select:
      Out.push_back(E->Operands[1]);
      Out.push_back(E->Operands[2]);
      break;
    default:
      break;
    }
  };
  if (Body->Kind == ExprKind::Reduce) {
    size_t Before = Out.size();
    Peel(Body->Operands[0]);
    // Re-wrap each candidate in the original Reduce node.
    for (size_t I = Before; I < Out.size(); ++I)
      Out[I] = reduce(Body->RKind, Out[I], Body->ReduceAxes);
  } else {
    Peel(Body);
  }
  return Out;
}

} // namespace

ReduceResult reduceModule(const ir::Module &M, const FailPredicate &StillFails,
                          const ReduceOptions &Opts) {
  ReduceResult Res;
  Module Cur = cloneModule(M);
  unsigned Checks = 0, Kept = 0;

  auto Accept = [&](std::optional<Module> Cand) -> bool {
    if (!Cand || Cand->ops().empty())
      return false;
    if (!checkModuleBounds(*Cand).empty() || !freeVarsOk(*Cand))
      return false;
    if (Checks >= Opts.MaxChecks)
      return false;
    ++Checks;
    if (!StillFails(*Cand))
      return false;
    Cur = std::move(*Cand);
    ++Kept;
    return true;
  };

  bool Progress = true;
  while (Progress && Checks < Opts.MaxChecks) {
    Progress = false;
    // 1. Drop ops, last to first (later ops are cheapest to rewire).
    for (size_t I = Cur.ops().size(); I-- > 0 && !Progress;)
      Progress = Accept(tryDropOp(Cur, I));
    if (Progress)
      continue;
    // 2. Shrink every occurrence of one extent value.
    std::set<int64_t> Extents;
    for (const Tensor &T : Cur.allTensors())
      for (int64_t D : T->Shape)
        if (D > 1)
          Extents.insert(D);
    for (auto It = Extents.rbegin(); It != Extents.rend() && !Progress;
         ++It) {
      int64_t From = *It;
      int64_t To = From >= 4 ? From / 2 : From - 1;
      Progress = Accept(tryShrinkExtent(Cur, From, To));
    }
    if (Progress)
      continue;
    // 3. Peel op bodies down to an operand.
    for (size_t I = 0; I < Cur.ops().size() && !Progress; ++I) {
      for (const Expr &Cand : simplifyCandidates(Cur.ops()[I]->Body)) {
        if (Accept(rebuild(Cur, nullptr, nullptr, nullptr,
                           Cur.ops()[I].get(), Cand))) {
          Progress = true;
          break;
        }
      }
    }
  }

  Res.ChecksUsed = Checks;
  Res.MutationsKept = Kept;
  Res.CppTestCase = emitModuleBuilder(Cur);
  Res.Reduced = std::move(Cur);
  return Res;
}

std::string corpusLine(uint64_t Seed, const std::string &Description) {
  return std::to_string(Seed) + " # " + Description;
}

} // namespace verify
} // namespace akg
