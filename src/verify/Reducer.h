//===- verify/Reducer.h - Automatic failing-module reducer ------*- C++ -*-===//
//
// Greedy delta-debugging over DSL modules (DESIGN.md 4e): given a module
// on which a failure predicate holds (typically "the oracle still flags a
// mismatch"), repeatedly tries semantics-shrinking mutations - drop an op
// (rewiring its consumers), shrink every occurrence of one extent value,
// simplify an op body - keeping a mutation only when the module still
// builds, provably stays in bounds (ir::checkModuleBounds), and still
// fails the predicate. The fixpoint is emitted as a ready-to-paste C++
// test case (ir::emitModuleBuilder) plus a one-line corpus entry.
//
//===----------------------------------------------------------------------===//

#ifndef AKG_VERIFY_REDUCER_H
#define AKG_VERIFY_REDUCER_H

#include "ir/Dsl.h"

#include <functional>
#include <string>

namespace akg {
namespace verify {

/// Returns true when the failure still reproduces on \p M. The reducer
/// only ever calls this with structurally valid, bounds-checked modules.
using FailPredicate = std::function<bool(const ir::Module &)>;

struct ReduceOptions {
  /// Cap on predicate evaluations (each typically runs the oracle).
  unsigned MaxChecks = 400;
};

struct ReduceResult {
  ir::Module Reduced;
  unsigned ChecksUsed = 0;     // predicate evaluations spent
  unsigned MutationsKept = 0;  // successful shrink steps
  std::string CppTestCase;     // ir::emitModuleBuilder of the fixpoint
};

/// Shrinks \p M to a (locally) minimal module still failing \p StillFails.
/// \p M itself must fail the predicate; the result is a deep clone and
/// never aliases \p M.
ReduceResult reduceModule(const ir::Module &M, const FailPredicate &StillFails,
                          const ReduceOptions &Opts = {});

/// One corpus line for a failing seed: "<seed> # <description>", the
/// format tools/akg-fuzz appends to its corpus file and the fixed seed
/// lists in tests consume.
std::string corpusLine(uint64_t Seed, const std::string &Description);

} // namespace verify
} // namespace akg

#endif // AKG_VERIFY_REDUCER_H
