//===- tests/AffineTest.cpp - Integer set / affine map unit tests ---------===//

#include "poly/Affine.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace akg;
using namespace akg::poly;

namespace {

TEST(BasicSet, RectangleBounds) {
  BasicSet S(Space::forSet({"i", "j"}, "S"));
  S.addIneq({1, 0}, 0);   // i >= 0
  S.addIneq({-1, 0}, 9);  // i <= 9
  S.addIneq({0, 1}, 0);   // j >= 0
  S.addIneq({0, -1}, 19); // j <= 19
  EXPECT_FALSE(S.isEmpty());
  EXPECT_EQ(S.minOfCol(S.inCol(0)).value(), 0);
  EXPECT_EQ(S.maxOfCol(S.inCol(0)).value(), 9);
  EXPECT_EQ(S.maxOfCol(S.inCol(1)).value(), 19);
}

TEST(BasicSet, EmptyDetection) {
  BasicSet S(Space::forSet({"i"}, "S"));
  S.addIneq({1}, -5); // i >= 5
  S.addIneq({-1}, 3); // i <= 3
  EXPECT_TRUE(S.isEmpty());
}

TEST(BasicSet, FixedValue) {
  BasicSet S(Space::forSet({"i", "j"}, "S"));
  S.addEq({1, -1}, 0); // i == j
  S.addEq({1, 0}, -7); // i == 7
  EXPECT_EQ(S.fixedValue(S.inCol(1)).value(), 7);
}

TEST(BasicSet, FourierMotzkinProjection) {
  // { [i,j] : 0 <= i <= 10, i <= j <= i + 2 }; projecting out j gives
  // 0 <= i <= 10.
  BasicSet S(Space::forSet({"i", "j"}, "S"));
  S.addIneq({1, 0}, 0);
  S.addIneq({-1, 0}, 10);
  S.addIneq({-1, 1}, 0);  // j >= i
  S.addIneq({1, -1}, 2);  // j <= i + 2
  BasicSet P = S.projectOntoPrefix(1);
  EXPECT_EQ(P.space().numIn(), 1u);
  EXPECT_EQ(P.minOfCol(P.inCol(0)).value(), 0);
  EXPECT_EQ(P.maxOfCol(P.inCol(0)).value(), 10);
}

TEST(BasicSet, DivFloorSemantics) {
  // { [i] : 0 <= i <= 10, q = floor(i/3), q = 2 } => i in [6,8].
  BasicSet S(Space::forSet({"i"}, "S"));
  S.addIneq({1}, 0);
  S.addIneq({-1}, 10);
  unsigned Q = S.addDiv({1}, 0, 3);
  std::vector<int64_t> Pin(S.numCols(), 0);
  Pin[Q] = 1;
  S.addEq(Pin, -2);
  EXPECT_EQ(S.minOfCol(S.inCol(0)).value(), 6);
  EXPECT_EQ(S.maxOfCol(S.inCol(0)).value(), 8);
}

TEST(BasicSet, IntegerEmptinessWithDiv) {
  // { [i] : i = 2q, i = 5 } has no integer points.
  BasicSet S(Space::forSet({"i"}, "S"));
  unsigned Q = S.addFreeExistential();
  std::vector<int64_t> Even(S.numCols(), 0);
  Even[S.inCol(0)] = 1;
  Even[Q] = -2;
  S.addEq(Even, 0);
  std::vector<int64_t> Five(S.numCols(), 0);
  Five[S.inCol(0)] = 1;
  S.addEq(Five, -5);
  EXPECT_FALSE(S.isEmpty(/*CheckInteger=*/false));
  EXPECT_TRUE(S.isEmpty(/*CheckInteger=*/true));
}

TEST(BasicMap, ApplyShiftMap) {
  // M: [i] -> [i + 3]; S = { [i] : 0 <= i <= 4 }; image = [3, 7].
  BasicMap M(Space::forMap({"i"}, {"o"}, "S", "T"));
  M.addEq({1, -1}, 3); // i - o + 3 == 0 => o = i + 3
  BasicSet S(Space::forSet({"i"}, "S"));
  S.addIneq({1}, 0);
  S.addIneq({-1}, 4);
  BasicSet R = applyMap(S, M);
  EXPECT_EQ(R.space().numIn(), 1u);
  EXPECT_EQ(R.minOfCol(R.inCol(0)).value(), 3);
  EXPECT_EQ(R.maxOfCol(R.inCol(0)).value(), 7);
}

TEST(BasicMap, ComposeMaps) {
  // A: [i] -> [2i], B: [j] -> [j + 1]; A.B: [i] -> [2i + 1].
  BasicMap A(Space::forMap({"i"}, {"j"}));
  A.addEq({2, -1}, 0);
  BasicMap B(Space::forMap({"j"}, {"k"}));
  B.addEq({1, -1}, 1);
  BasicMap C = composeMaps(A, B);
  // Apply to { i = 5 }: expect k = 11.
  BasicSet S(Space::forSet({"i"}));
  S.addEq({1}, -5);
  BasicSet R = applyMap(S, C);
  EXPECT_EQ(R.fixedValue(R.inCol(0)).value(), 11);
}

TEST(BasicMap, ReverseMap) {
  BasicMap M(Space::forMap({"i"}, {"o"}));
  M.addEq({1, -1}, 3); // o = i + 3
  BasicMap R = reverseMap(M);
  BasicSet S(Space::forSet({"o"}));
  S.addEq({1}, -10);
  BasicSet Img = applyMap(S, R);
  EXPECT_EQ(Img.fixedValue(Img.inCol(0)).value(), 7);
}

TEST(BasicMap, DomainAndRange) {
  // M: [i] -> [o] with 0 <= i <= 5, o = i * 2.
  BasicMap M(Space::forMap({"i"}, {"o"}));
  M.addIneq({1, 0}, 0);
  M.addIneq({-1, 0}, 5);
  M.addEq({2, -1}, 0);
  BasicSet D = domainOfMap(M);
  EXPECT_EQ(D.maxOfCol(D.inCol(0)).value(), 5);
  BasicSet R = rangeOfMap(M);
  EXPECT_EQ(R.maxOfCol(R.inCol(0)).value(), 10);
  EXPECT_EQ(R.minOfCol(R.inCol(0)).value(), 0);
}

TEST(BasicSet, RedundancyRemoval) {
  BasicSet S(Space::forSet({"i"}, "S"));
  S.addIneq({1}, 0);   // i >= 0
  S.addIneq({1}, 5);   // i >= -5 (redundant)
  S.addIneq({-1}, 10); // i <= 10
  S.removeRedundant();
  EXPECT_EQ(S.constraints().size(), 2u);
}

TEST(BasicSet, OverlappedTileRelation) {
  // The Fig. 3 extension-node shape: { [o] -> [h] : 32o <= h < 32o + KH + 31 }
  // with KH = 3; for o = 1 the h range is [32, 65].
  BasicMap Ext(Space::forMap({"o"}, {"h"}, "Tile", "S0"));
  Ext.addIneq({-32, 1}, 0);  // h >= 32 o
  Ext.addIneq({32, -1}, 34); // h <= 32 o + 34
  BasicSet O(Space::forSet({"o"}, "Tile"));
  O.addEq({1}, -1);
  BasicSet H = applyMap(O, Ext);
  EXPECT_EQ(H.minOfCol(H.inCol(0)).value(), 32);
  EXPECT_EQ(H.maxOfCol(H.inCol(0)).value(), 66);
}

TEST(SetUnion, UnionAndIntersect) {
  Space Sp = Space::forSet({"i"}, "S");
  BasicSet A(Sp);
  A.addIneq({1}, 0);
  A.addIneq({-1}, 3); // [0,3]
  BasicSet B(Sp);
  B.addIneq({1}, -10);
  B.addIneq({-1}, 13); // [10,13]
  Set U(Sp);
  U.addPiece(A);
  U = U.unionWith(Set(B));
  EXPECT_EQ(U.pieces().size(), 2u);
  BasicSet C(Sp);
  C.addIneq({1}, -2);
  C.addIneq({-1}, 11); // [2,11]
  Set I = U.intersect(Set(C));
  // [0,3] n [2,11] = [2,3]; [10,13] n [2,11] = [10,11].
  ASSERT_EQ(I.pieces().size(), 2u);
  EXPECT_EQ(I.pieces()[0].minOfCol(I.pieces()[0].inCol(0)).value(), 2);
  EXPECT_EQ(I.pieces()[1].maxOfCol(I.pieces()[1].inCol(0)).value(), 11);
}

TEST(BasicSet, SampleCacheAvoidsRepeatSolves) {
  BasicSet S(Space::forSet({"i", "j"}, "S"));
  S.addIneq({1, 0}, 0);
  S.addIneq({-1, 0}, 9);
  S.addIneq({0, 1}, 0);
  S.addIneq({0, -1}, 9);
  EXPECT_FALSE(S.isEmpty()); // first call solves and caches a point
  int64_t Before = Stats::get().counter("lp.solves_avoided_sample");
  EXPECT_FALSE(S.isEmpty());
  EXPECT_FALSE(S.isEmpty(/*CheckInteger=*/true));
  EXPECT_GE(Stats::get().counter("lp.solves_avoided_sample"), Before + 2);
}

TEST(BasicSet, SampleCacheInvalidatesOnAddIneq) {
  BasicSet S(Space::forSet({"i"}, "S"));
  S.addIneq({1}, 0);  // i >= 0
  S.addIneq({-1}, 9); // i <= 9
  EXPECT_FALSE(S.isEmpty());
  // Cut away everything: the cached point no longer satisfies the set and
  // must not leak a stale "non-empty" answer.
  S.addIneq({1}, -100); // i >= 100
  EXPECT_TRUE(S.isEmpty());
}

TEST(BasicSet, SampleCacheInvalidatesOnAddEq) {
  BasicSet S(Space::forSet({"i"}, "S"));
  S.addIneq({1}, 0);
  S.addIneq({-1}, 9);
  EXPECT_FALSE(S.isEmpty());
  S.addEq({2}, -5); // 2i == 5: rational point exists, integer does not
  EXPECT_FALSE(S.isEmpty());
  EXPECT_TRUE(S.isEmpty(/*CheckInteger=*/true));
}

TEST(BasicSet, SampleCacheSurvivesEliminateCol) {
  // eliminateCol changes the column layout; the cache must not apply a
  // stale point to the new layout.
  BasicSet S(Space::forSet({"i", "j"}, "S"));
  S.addIneq({1, 0}, 0);
  S.addIneq({-1, 0}, 9);
  S.addIneq({-1, 1}, 0); // j >= i
  S.addIneq({1, -1}, 2); // j <= i + 2
  EXPECT_FALSE(S.isEmpty());
  S.eliminateCol(S.inCol(1));
  EXPECT_FALSE(S.isEmpty());
  S.addIneq({-1}, -20); // over remaining column: i <= -20, contradiction
  EXPECT_TRUE(S.isEmpty());
}

TEST(BasicSet, DuplicateConstraintsDeduped) {
  BasicSet S(Space::forSet({"i"}, "S"));
  S.addIneq({1}, 0);
  S.addIneq({1}, 0); // exact duplicate: dropped on insert
  S.addEq({1}, -3);
  S.addEq({1}, -3); // duplicate equality too
  EXPECT_EQ(S.constraints().size(), 2u);
  EXPECT_FALSE(S.isEmpty(true));
}

TEST(BasicSet, RemoveRedundantPrefilterMatchesPureLp) {
  auto Build = [] {
    BasicSet S(Space::forSet({"i", "j"}, "S"));
    S.addIneq({1, 0}, 0);    // i >= 0 (tightest of the i-group)
    S.addIneq({1, 0}, 5);    // i >= -5 dominated
    S.addIneq({1, 0}, 100);  // i >= -100 dominated
    S.addIneq({0, -1}, 20);  // j <= 20 dominated by j <= 7
    S.addIneq({0, -1}, 7);
    S.addIneq({1, 1}, 3);    // not dominated: distinct coefficients
    S.addEq({1, -1}, 0);     // equalities are never prefiltered
    return S;
  };
  BasicSet Fast = Build();
  Fast.removeRedundant(/*Prefilter=*/true);
  BasicSet Slow = Build();
  Slow.removeRedundant(/*Prefilter=*/false);
  ASSERT_EQ(Fast.constraints().size(), Slow.constraints().size());
  for (size_t I = 0; I < Fast.constraints().size(); ++I) {
    EXPECT_EQ(Fast.constraints()[I].Coeffs, Slow.constraints()[I].Coeffs);
    EXPECT_EQ(Fast.constraints()[I].Const, Slow.constraints()[I].Const);
    EXPECT_EQ(Fast.constraints()[I].IsEq, Slow.constraints()[I].IsEq);
  }
}

TEST(BasicSet, RemoveRedundantPrefilterEmptySetKeepsAll) {
  // On an empty set every redundancy probe is infeasible, so the pure-LP
  // loop keeps all constraints; the prefilter's member-point gate must
  // close so the shortcut path keeps them too - including the dominated
  // pair, which an ungated dominance pass would have dropped.
  auto Build = [] {
    BasicSet S(Space::forSet({"i"}, "S"));
    S.addIneq({1}, -10); // i >= 10
    S.addIneq({1}, -3);  // i >= 3, dominated
    S.addIneq({-1}, 1);  // i <= 1: empty
    return S;
  };
  BasicSet Fast = Build();
  Fast.removeRedundant(/*Prefilter=*/true);
  BasicSet Slow = Build();
  Slow.removeRedundant(/*Prefilter=*/false);
  EXPECT_TRUE(Build().isEmpty());
  ASSERT_EQ(Fast.constraints().size(), Slow.constraints().size());
  for (size_t I = 0; I < Fast.constraints().size(); ++I) {
    EXPECT_EQ(Fast.constraints()[I].Coeffs, Slow.constraints()[I].Coeffs);
    EXPECT_EQ(Fast.constraints()[I].Const, Slow.constraints()[I].Const);
  }
}

TEST(BasicSet, RemoveRedundantPrefilterRandomized) {
  // Random box-ish sets: prefiltered and pure-LP redundancy removal must
  // agree on the exact surviving constraint list.
  uint64_t S0 = 0x9E3779B97F4A7C15ull;
  for (int Iter = 0; Iter < 40; ++Iter) {
    auto Next = [&S0] {
      S0 ^= S0 << 13;
      S0 ^= S0 >> 7;
      S0 ^= S0 << 17;
      return S0 * 0x2545F4914F6CDD1Dull;
    };
    auto Build = [&] {
      BasicSet S(Space::forSet({"i", "j"}, "S"));
      unsigned N = 3 + unsigned(Next() % 6);
      for (unsigned C = 0; C < N; ++C) {
        int64_t A = int64_t(Next() % 5) - 2;
        int64_t B = int64_t(Next() % 5) - 2;
        // Nonnegative constants keep the origin inside so the prefilter's
        // member-point gate opens and the shortcuts actually engage (on an
        // empty set the gate closes and both loops trivially agree).
        int64_t K = int64_t(Next() % 17);
        if (A == 0 && B == 0)
          A = 1;
        S.addIneq({A, B}, K);
      }
      // Keep it bounded-ish so the LP loop has work to do.
      S.addIneq({1, 0}, 8);
      S.addIneq({-1, 0}, 8);
      S.addIneq({0, 1}, 8);
      S.addIneq({0, -1}, 8);
      return S;
    };
    uint64_t Saved = S0;
    BasicSet Fast = Build();
    S0 = Saved; // identical constraint stream for both copies
    BasicSet Slow = Build();
    Fast.removeRedundant(true);
    Slow.removeRedundant(false);
    ASSERT_EQ(Fast.constraints().size(), Slow.constraints().size())
        << "iteration " << Iter;
    for (size_t I = 0; I < Fast.constraints().size(); ++I) {
      EXPECT_EQ(Fast.constraints()[I].Coeffs, Slow.constraints()[I].Coeffs);
      EXPECT_EQ(Fast.constraints()[I].Const, Slow.constraints()[I].Const);
      EXPECT_EQ(Fast.constraints()[I].IsEq, Slow.constraints()[I].IsEq);
    }
  }
}

TEST(BasicMap, IdentityMapOn) {
  BasicSet S(Space::forSet({"i"}, "S"));
  S.addIneq({1}, 0);
  S.addIneq({-1}, 5);
  BasicMap Id = identityMapOn(S);
  BasicSet Pt(Space::forSet({"i"}, "S"));
  Pt.addEq({1}, -4);
  BasicSet R = applyMap(Pt, Id);
  EXPECT_EQ(R.fixedValue(R.inCol(0)).value(), 4);
}

} // namespace
