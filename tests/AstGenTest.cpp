//===- tests/AstGenTest.cpp - Schedule-tree AST generation tests ----------===//

#include "ir/Passes.h"
#include "schedule/AstGen.h"
#include "scheduler/Pluto.h"

#include <gtest/gtest.h>

using namespace akg;
using namespace akg::ir;
using namespace akg::sched;

namespace {

/// Compiles via extract -> dependences -> Pluto -> tree -> AST, executes the
/// AST, and compares every output tensor with the reference evaluator.
void checkModuleRoundTrip(const Module &M, const SchedulerOptions &Opts) {
  PolyProgram P = extractPolyProgram(M);
  std::vector<Dependence> Deps = computeDependences(P);
  ScheduleResult R = computeSchedule(P, Deps, Opts);
  ScheduleTree T = buildScheduledTree(P, R);
  Stmt Ast = generateAst(T, P);
  ASSERT_TRUE(Ast);

  BufferMap In;
  for (const Tensor &T2 : M.inputs())
    In[T2->Name] = makeTestData(T2->numElements(), 7 + T2->numElements());
  BufferMap Ref = evaluateModule(M, In);
  BufferMap Got = In;
  execStmt(Ast, Got);
  for (const Tensor &O : M.outputs()) {
    ASSERT_TRUE(Got.count(O->Name)) << "missing output " << O->Name;
    const auto &GV = Got[O->Name];
    const auto &RV = Ref[O->Name];
    ASSERT_EQ(GV.size(), RV.size());
    for (size_t I = 0; I < GV.size(); ++I)
      ASSERT_NEAR(GV[I], RV[I], 1e-3) << O->Name << "[" << I << "]";
  }
}

Module convChain(int64_t H = 12, int64_t W = 12, int64_t KH = 3,
                 int64_t KW = 3) {
  Module M;
  Tensor A = M.placeholder("A", {H, W});
  Tensor B = M.placeholder("B", {KH, KW});
  Tensor A2 = M.compute("A2", {H, W}, [&](const std::vector<Expr> &I) {
    return add(tensorRead(A, {I[0], I[1]}), floatImm(0.5));
  });
  IterVar Kh = M.reduceAxis(KH, "kh");
  IterVar Kw = M.reduceAxis(KW, "kw");
  Tensor C = M.compute("C", {H - KH + 1, W - KW + 1},
                       [&](const std::vector<Expr> &I) {
                         Expr Prod =
                             mul(tensorRead(A2, {add(I[0], var("kh")),
                                                 add(I[1], var("kw"))}),
                                 tensorRead(B, {var("kh"), var("kw")}));
                         return reduce(ReduceKind::Sum, Prod, {Kh, Kw});
                       });
  M.compute("D", {H - KH + 1, W - KW + 1},
            [&](const std::vector<Expr> &I) {
              return call("relu", {tensorRead(C, {I[0], I[1]})}, DType::F16);
            });
  return M;
}

TEST(AstGen, ElementwiseIdentity) {
  Module M;
  Tensor A = M.placeholder("A", {6, 5});
  M.compute("B", {6, 5}, [&](const std::vector<Expr> &I) {
    return mul(tensorRead(A, {I[0], I[1]}), floatImm(2.0));
  });
  checkModuleRoundTrip(M, SchedulerOptions{});
}

TEST(AstGen, ConvChainConservative) {
  checkModuleRoundTrip(convChain(), SchedulerOptions{});
}

TEST(AstGen, ConvChainAggressiveFusion) {
  SchedulerOptions Opts;
  Opts.Fusion = FusionStrategy::Aggressive;
  checkModuleRoundTrip(convChain(10, 10), Opts);
}

TEST(AstGen, TransposeLike) {
  Module M;
  Tensor A = M.placeholder("A", {7, 9});
  M.compute("B", {9, 7}, [&](const std::vector<Expr> &I) {
    return tensorRead(A, {I[1], I[0]});
  });
  checkModuleRoundTrip(M, SchedulerOptions{});
}

TEST(AstGen, MatmulReduction) {
  Module M;
  Tensor A = M.placeholder("A", {6, 8});
  Tensor B = M.placeholder("B", {8, 5});
  IterVar K = M.reduceAxis(8, "k");
  M.compute("C", {6, 5}, [&](const std::vector<Expr> &I) {
    return reduce(ReduceKind::Sum,
                  mul(tensorRead(A, {I[0], var("k")}),
                      tensorRead(B, {var("k"), I[1]})),
                  {K});
  }, DType::F32);
  checkModuleRoundTrip(M, SchedulerOptions{});
}

TEST(AstGen, ManualTileRowsProduceCorrectCode) {
  // Manually tile a 2D elementwise statement with 4x4 tiles over 10x10:
  // exercises quasi-affine (floor) band rows and partial tiles.
  Module M;
  Tensor A = M.placeholder("A", {10, 10});
  M.compute("B", {10, 10}, [&](const std::vector<Expr> &I) {
    return add(tensorRead(A, {I[0], I[1]}), floatImm(1.0));
  });
  PolyProgram P = extractPolyProgram(M);
  ScheduleTree T;
  auto Root = makeDomain();
  std::map<unsigned, StmtSchedule> Tile;
  StmtSchedule SS;
  SS.Rows.push_back(ScheduleRow{{1, 0}, 0, 4}); // floor(i/4)
  SS.Rows.push_back(ScheduleRow{{0, 1}, 0, 4}); // floor(j/4)
  SS.Rows.push_back(ScheduleRow{{1, 0}, 0, 1}); // i
  SS.Rows.push_back(ScheduleRow{{0, 1}, 0, 1}); // j
  Tile[0] = SS;
  Root->addChild(makeBand(std::move(Tile), true));
  T.setRoot(std::move(Root));
  Stmt Ast = generateAst(T, P);
  ASSERT_TRUE(Ast);

  BufferMap In;
  In["A"] = makeTestData(100, 3);
  BufferMap Ref = evaluateModule(M, In);
  BufferMap Got = In;
  execStmt(Ast, Got);
  for (int I = 0; I < 100; ++I)
    ASSERT_NEAR(Got["B"][I], Ref["B"][I], 1e-4);
}

TEST(AstGen, ExtensionNodeOverlappedTiles) {
  // Post-tiling fusion by hand: a producer S0 is re-introduced under the
  // consumer's tile loop via an extension whose relation allows overlapped
  // ranges (the Fig 3e mechanism).
  Module M;
  Tensor A = M.placeholder("A", {12});
  Tensor B = M.compute("B", {12}, [&](const std::vector<Expr> &I) {
    return add(tensorRead(A, {I[0]}), floatImm(2.0));
  });
  IterVar K = M.reduceAxis(3, "k");
  M.compute("C", {10}, [&](const std::vector<Expr> &I) {
    return reduce(ReduceKind::Sum, tensorRead(B, {add(I[0], var("k"))}),
                  {K});
  });
  PolyProgram P = extractPolyProgram(M);

  // Tree: Domain -> Sequence:
  //   Filter{S0} under Mark{"skipped"}   (original producer suppressed)
  //   Filter{S1,S2} -> Band{tile i/5} -> Extension{S0: tile -> [5t, 5t+6]}
  //     -> Sequence: Filter{S0}->Band{i}, Filter{S1}->Band{i},
  //                  Filter{S2}->Band{i,k}
  ScheduleTree T;
  auto Root = makeDomain();
  TreeNode *Seq = Root->addChild(makeSequence());
  TreeNode *F0 = Seq->addChild(makeFilter({0}));
  TreeNode *Skip = F0->addChild(makeMark("skipped"));
  std::map<unsigned, StmtSchedule> Id0;
  Id0[0] = identitySchedule(1);
  Skip->addChild(makeBand(std::move(Id0), true));

  TreeNode *F12 = Seq->addChild(makeFilter({1, 2}));
  std::map<unsigned, StmtSchedule> TileSched;
  TileSched[1] = StmtSchedule{{ScheduleRow{{1}, 0, 5}}};
  TileSched[2] = StmtSchedule{{ScheduleRow{{1, 0}, 0, 5}}};
  TreeNode *TileBand = F12->addChild(makeBand(std::move(TileSched), true));

  // Extension: {t -> S0[i] : 5t <= i <= 5t + 6}.
  poly::BasicMap Rel(poly::Space::forMap({"t"}, {"i"}, "tile", "S0"));
  Rel.addIneq({-5, 1}, 0); // i - 5t >= 0
  Rel.addIneq({5, -1}, 6); // 5t + 6 - i >= 0
  TreeNode *Ext = TileBand->addChild(
      makeExtension({ExtensionDecl{0, Rel}}));
  TreeNode *InnerSeq = Ext->addChild(makeSequence());
  TreeNode *EF0 = InnerSeq->addChild(makeFilter({0}));
  std::map<unsigned, StmtSchedule> P0;
  P0[0] = identitySchedule(1);
  EF0->addChild(makeBand(std::move(P0), true));
  TreeNode *EF1 = InnerSeq->addChild(makeFilter({1}));
  std::map<unsigned, StmtSchedule> P1;
  P1[1] = identitySchedule(1);
  EF1->addChild(makeBand(std::move(P1), true));
  TreeNode *EF2 = InnerSeq->addChild(makeFilter({2}));
  std::map<unsigned, StmtSchedule> P2;
  P2[2] = identitySchedule(2);
  EF2->addChild(makeBand(std::move(P2), true));
  T.setRoot(std::move(Root));

  Stmt Ast = generateAst(T, P);
  ASSERT_TRUE(Ast);
  BufferMap In;
  In["A"] = makeTestData(12, 5);
  BufferMap Ref = evaluateModule(M, In);
  BufferMap Got = In;
  execStmt(Ast, Got);
  for (int I = 0; I < 10; ++I)
    ASSERT_NEAR(Got["C"][I], Ref["C"][I], 1e-4) << I;
}

} // namespace
