//===- tests/BaselineAndTunerTest.cpp - Baselines + auto-tuner tests ------===//

#include "akg/AutoTuner.h"
#include "baselines/CceLibrary.h"
#include "baselines/TvmCompiler.h"
#include "graph/Ops.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace akg;
using namespace akg::ir;

namespace {

const sim::MachineSpec &machine() { return sim::MachineSpec::ascend910(); }

int64_t perfCycles(const cce::Kernel &K) {
  sim::SimOptions SO;
  SO.Functional = false;
  return sim::simulate(K, machine(), nullptr, SO).Cycles;
}

TEST(TvmBaseline, ProducesCorrectCode) {
  auto M = graph::makeSubgraph5();
  baselines::TvmOptions O;
  CompileResult R = baselines::compileWithTvm(*M, O, "tvm_sub5");
  EXPECT_LT(verifyKernel(R.Kernel, *M, machine()), 1e-3);
}

TEST(TvmBaseline, SlowerThanAkgOnFusedSubgraph) {
  auto M = graph::makeSubgraph1(8); // (16,16,64,64)
  CompileResult A = compileWithAkg(*M, AkgOptions{}, "akg_sub1");
  baselines::TvmOptions O;
  CompileResult T = baselines::compileWithTvm(*M, O, "tvm_sub1");
  EXPECT_LT(verifyKernel(A.Kernel, *M, machine()), 1e-3);
  EXPECT_LT(verifyKernel(T.Kernel, *M, machine()), 1e-3);
  EXPECT_LE(perfCycles(A.Kernel), perfCycles(T.Kernel));
}

TEST(CceLibrary, SplitPerOperatorPreservesSemantics) {
  auto M = graph::makeSubgraph5();
  auto Singles = baselines::splitPerOperator(*M);
  EXPECT_EQ(Singles.size(), M->ops().size());
  // Composed execution through GM matches the fused reference.
  baselines::LibrarySequence Seq =
      baselines::buildCceOptLibrary(*M, machine(), "lib_sub5");
  BufferMap In;
  for (const Tensor &T : M->inputs())
    In[T->Name] = makeTestData(T->numElements(), 21);
  BufferMap Ref = evaluateModule(*M, In);
  BufferMap Got = In;
  baselines::simulateSequence(Seq, machine(), &Got, /*Functional=*/true);
  for (const Tensor &O : M->outputs()) {
    const auto &GV = Got.at(O->Name);
    const auto &RV = Ref.at(O->Name);
    for (size_t I = 0; I < GV.size(); ++I)
      ASSERT_NEAR(GV[I], RV[I], 1e-3);
  }
}

TEST(CceLibrary, CompositionPaysGmRoundTrips) {
  auto M = graph::makeSubgraph5();
  CompileResult A = compileWithAkg(*M, AkgOptions{}, "akg_sub5");
  baselines::LibrarySequence Seq =
      baselines::buildCceOptLibrary(*M, machine(), "lib_sub5");
  sim::SimOptions SO;
  SO.Functional = false;
  sim::SimResult Fused = sim::simulate(A.Kernel, machine(), nullptr, SO);
  sim::SimResult Lib = baselines::simulateSequence(Seq, machine());
  // The library moves far more data and is slower end to end.
  EXPECT_GT(Lib.GmTrafficBytes, Fused.GmTrafficBytes);
  EXPECT_GT(Lib.Cycles, Fused.Cycles);
}

TEST(CceNaive, MuchSlowerThanOptimized) {
  auto M = graph::makeTensorAdd({16, 64, 14, 14});
  CompileResult N = baselines::buildCceNaive(*M, "naive_add");
  CompileResult A = compileWithAkg(*M, AkgOptions{}, "akg_add");
  EXPECT_LT(verifyKernel(N.Kernel, *M, machine()), 1e-3);
  EXPECT_GT(perfCycles(N.Kernel), 2 * perfCycles(A.Kernel));
}

TEST(AutoTuner, NeverWorseThanStartAndDeterministic) {
  auto M = graph::makeTensorAdd({16, 64, 16, 16});
  TunerOptions TO;
  TO.FirstRoundSamples = 6;
  TO.RoundSamples = 4;
  TO.MaxRounds = 2;
  TuneResult R1 = tuneAkgKernel(*M, AkgOptions{}, machine(), TO);
  TuneResult R2 = tuneAkgKernel(*M, AkgOptions{}, machine(), TO);
  EXPECT_LE(R1.BestCycles, R1.InitialCycles);
  EXPECT_EQ(R1.BestCycles, R2.BestCycles);
  EXPECT_EQ(R1.BestTiles, R2.BestTiles);
}

TEST(AutoTuner, GridSearchOverCustomSpace) {
  // Synthetic measurable function: optimum at (4, 8).
  std::vector<std::vector<int64_t>> Space = {{1, 2, 4, 8}, {2, 4, 8, 16}};
  auto Measure = [](const std::vector<int64_t> &T) -> int64_t {
    return std::llabs(T[0] - 4) * 100 + std::llabs(T[1] - 8) * 10 + 5;
  };
  TunerOptions TO;
  TO.FirstRoundSamples = 10;
  TO.RoundSamples = 6;
  TO.MaxRounds = 4;
  TuneResult R = tuneTiles(Space, {1, 2}, Measure, TO);
  // The sampling tuner is not guaranteed to find the exact optimum (the
  // paper says as much, Sec 5.3), but it must improve substantially on the
  // start (cost 365) and identify the right first coordinate.
  EXPECT_LE(R.BestCycles, 105);
  EXPECT_LT(R.BestCycles, R.InitialCycles);
  EXPECT_EQ(R.BestTiles[0], 4);
}

} // namespace
