//===- tests/CompileServiceTest.cpp - Parallel compile service ------------===//
//
// The compile service's determinism contract: the Fig 13 network set
// compiled on 1 thread, on 4 threads, and from a warm cache produces
// bit-identical CCE kernel dumps and identical DegradationReports.
// Also unit-tests the thread pool, the service's job expansion, and the
// thread safety of the Stats / env singletons the workers share.
//
//===----------------------------------------------------------------------===//

#include "akg/CompileService.h"
#include "graph/Networks.h"
#include "support/Env.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "target/CceIr.h"

#include <atomic>
#include <gtest/gtest.h>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

using namespace akg;
using namespace akg::graph;

namespace {

TEST(ThreadPool, InlineModeRunsOnCallingThread) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.size(), 0u); // no workers: submit() runs inline
  bool Ran = false;
  auto Fut = Pool.submit([&] {
    Ran = true;
    return 42;
  });
  EXPECT_TRUE(Ran); // before get(): inline execution already happened
  EXPECT_EQ(Fut.get(), 42);
}

TEST(ThreadPool, WorkersDrainTheQueue) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.size(), 4u);
  std::atomic<int> Sum{0};
  std::vector<std::future<void>> Futs;
  for (int I = 1; I <= 100; ++I)
    Futs.push_back(Pool.submit([&Sum, I] { Sum += I; }));
  for (auto &F : Futs)
    F.get();
  EXPECT_EQ(Sum.load(), 5050);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool Pool(2);
  auto Fut = Pool.submit([]() -> int {
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(Fut.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  for (unsigned Threads : {1u, 2u, 8u}) {
    std::vector<std::atomic<int>> Seen(256);
    parallelFor(Threads, Seen.size(), [&](size_t I) { Seen[I]++; });
    for (size_t I = 0; I < Seen.size(); ++I)
      EXPECT_EQ(Seen[I].load(), 1) << "index " << I << " at " << Threads
                                   << " threads";
  }
}

TEST(ThreadPool, ParallelForRethrowsWorkerExceptions) {
  EXPECT_THROW(parallelFor(4, 16,
                           [](size_t I) {
                             if (I == 7)
                               throw std::runtime_error("index 7");
                           }),
               std::runtime_error);
}

TEST(StatsConcurrency, CountersSurviveAHammer) {
  const std::string Key = "test.hammer_counter";
  int64_t Before = Stats::get().counter(Key);
  parallelFor(8, 8, [&](size_t) {
    for (int I = 0; I < 1000; ++I)
      Stats::get().add(Key);
  });
  EXPECT_EQ(Stats::get().counter(Key) - Before, 8000);
  double TBefore = Stats::get().timer("test.hammer_timer");
  parallelFor(8, 8, [&](size_t) {
    for (int I = 0; I < 100; ++I)
      Stats::get().addTime("test.hammer_timer", 0.001);
  });
  EXPECT_NEAR(Stats::get().timer("test.hammer_timer") - TBefore, 0.8, 1e-9);
}

TEST(EnvConcurrency, GuardedAccessorsSurviveAHammer) {
  parallelFor(8, 8, [&](size_t I) {
    std::string Name = "AKG_TEST_ENV_" + std::to_string(I);
    for (int J = 0; J < 200; ++J) {
      env::set(Name.c_str(), std::to_string(J));
      // Interleave reads of a variable other threads are writing.
      (void)env::get("AKG_TEST_ENV_0");
      (void)env::isSet("AKG_TEST_ENV_7");
    }
  });
  for (size_t I = 0; I < 8; ++I) {
    std::string Name = "AKG_TEST_ENV_" + std::to_string(I);
    auto V = env::get(Name.c_str());
    ASSERT_TRUE(V.has_value());
    EXPECT_EQ(*V, "199");
    env::unset(Name.c_str());
  }
}

TEST(CompileService, ThreadCountResolution) {
  EXPECT_EQ(compileServiceThreads(3), 3u);
  env::unset("AKG_THREADS");
  EXPECT_EQ(compileServiceThreads(0), 1u); // unset -> sequential
  env::set("AKG_THREADS", "6");
  EXPECT_EQ(compileServiceThreads(0), 6u);
  EXPECT_EQ(compileServiceThreads(2), 2u); // explicit beats env
  env::set("AKG_THREADS", "not_a_number");
  EXPECT_EQ(compileServiceThreads(0), 1u);
  env::set("AKG_THREADS", "100000");
  EXPECT_EQ(compileServiceThreads(0), 256u); // clamped
  env::unset("AKG_THREADS");
}

TEST(CompileService, NetworkJobsExpandOccurrences) {
  NetworkModel N = buildAlexNet();
  AkgOptions Base;
  std::vector<CompileJob> Distinct = networkCompileJobs(N, Base);
  EXPECT_EQ(Distinct.size(), N.Layers.size());
  int64_t Occurrences = 0;
  for (const LayerWorkload &L : N.Layers)
    Occurrences += L.Count;
  std::vector<CompileJob> All =
      networkCompileJobs(N, Base, /*PerOccurrence=*/true);
  EXPECT_EQ(All.size(), static_cast<size_t>(Occurrences));
  // Per-occurrence names stay unique; distinct names carry net/layer.
  EXPECT_EQ(Distinct.front().Name, N.Name + "/" + N.Layers.front().Name);
}

/// The satellite contract: the Fig 13 network set compiled at 1 and 4
/// threads (and again from the warm cache) yields identical CCE kernel
/// dumps and identical DegradationReports.
TEST(CompileService, Fig13NetworksDeterministicAcrossThreadCounts) {
  NetworkModel Nets[6] = {buildResNet50(), buildMobileNetV2(),
                          buildAlexNet(), buildBert(21128),
                          buildBert(30522), buildSsd()};
  AkgOptions Base;
  std::vector<CompileJob> Jobs;
  for (const NetworkModel &N : Nets) {
    std::vector<CompileJob> J = networkCompileJobs(N, Base);
    Jobs.insert(Jobs.end(), J.begin(), J.end());
  }
  ASSERT_GT(Jobs.size(), 30u);

  KernelCache Cache1;
  CompileServiceOptions One;
  One.Threads = 1;
  One.Cache = &Cache1;
  std::vector<CompileResult> R1 = compileModulesParallel(Jobs, One);

  KernelCache Cache4;
  CompileServiceOptions Four;
  Four.Threads = 4;
  Four.Cache = &Cache4;
  std::vector<CompileResult> R4 = compileModulesParallel(Jobs, Four);
  KernelCacheStats Cold = Cache4.stats();

  // Same jobs against the already-warm 4-thread cache.
  std::vector<CompileResult> RW = compileModulesParallel(Jobs, Four);

  ASSERT_EQ(R1.size(), Jobs.size());
  ASSERT_EQ(R4.size(), Jobs.size());
  ASSERT_EQ(RW.size(), Jobs.size());
  for (size_t I = 0; I < Jobs.size(); ++I) {
    std::string D1 = cce::printKernel(R1[I].Kernel);
    EXPECT_EQ(D1, cce::printKernel(R4[I].Kernel))
        << Jobs[I].Name << ": 1-thread vs 4-thread kernels differ";
    EXPECT_EQ(D1, cce::printKernel(RW[I].Kernel))
        << Jobs[I].Name << ": cold vs warm kernels differ";
    EXPECT_EQ(R1[I].Degradation.str(), R4[I].Degradation.str())
        << Jobs[I].Name << ": degradation reports differ across threads";
    EXPECT_EQ(R1[I].Degradation.str(), RW[I].Degradation.str())
        << Jobs[I].Name << ": degradation reports differ cold vs warm";
    EXPECT_EQ(R1[I].Kernel.Name, Jobs[I].Name); // results in job order
  }
  // The warm pass must have been served entirely from the cache: every
  // job a hit, no new compiles. (The cold pass can record a few hits of
  // its own - BERT's two vocabularies share most of their layers.)
  KernelCacheStats S = Cache4.stats();
  EXPECT_EQ(S.Hits - Cold.Hits, static_cast<int64_t>(Jobs.size()));
  EXPECT_EQ(S.Misses, Cold.Misses);
}

TEST(CompileService, NullCacheCompilesEveryJob) {
  NetworkModel N = buildAlexNet();
  AkgOptions Base;
  std::vector<CompileJob> Jobs =
      networkCompileJobs(N, Base, /*PerOccurrence=*/true);
  CompileServiceOptions SO;
  SO.Threads = 2;
  SO.Cache = nullptr; // pre-cache behavior: compile everything
  std::vector<CompileResult> R = compileModulesParallel(Jobs, SO);
  ASSERT_EQ(R.size(), Jobs.size());
  for (size_t I = 0; I < Jobs.size(); ++I)
    EXPECT_EQ(R[I].Kernel.Name, Jobs[I].Name);
}

} // namespace
