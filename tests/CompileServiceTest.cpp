//===- tests/CompileServiceTest.cpp - Parallel compile service ------------===//
//
// The compile service's determinism contract: the Fig 13 network set
// compiled on 1 thread, on 4 threads, and from a warm cache produces
// bit-identical CCE kernel dumps and identical DegradationReports.
// Also unit-tests the thread pool, the service's job expansion, and the
// thread safety of the Stats / env singletons the workers share.
//
//===----------------------------------------------------------------------===//

#include "akg/CompileService.h"
#include "graph/Networks.h"
#include "graph/Ops.h"
#include "support/Cancel.h"
#include "support/Env.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"
#include "target/CceIr.h"

#include <atomic>
#include <chrono>
#include <gtest/gtest.h>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

using namespace akg;
using namespace akg::graph;

namespace {

TEST(ThreadPool, InlineModeRunsOnCallingThread) {
  ThreadPool Pool(1);
  EXPECT_EQ(Pool.size(), 0u); // no workers: submit() runs inline
  bool Ran = false;
  auto Fut = Pool.submit([&] {
    Ran = true;
    return 42;
  });
  EXPECT_TRUE(Ran); // before get(): inline execution already happened
  EXPECT_EQ(Fut.get(), 42);
}

TEST(ThreadPool, WorkersDrainTheQueue) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.size(), 4u);
  std::atomic<int> Sum{0};
  std::vector<std::future<void>> Futs;
  for (int I = 1; I <= 100; ++I)
    Futs.push_back(Pool.submit([&Sum, I] { Sum += I; }));
  for (auto &F : Futs)
    F.get();
  EXPECT_EQ(Sum.load(), 5050);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool Pool(2);
  auto Fut = Pool.submit([]() -> int {
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(Fut.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  for (unsigned Threads : {1u, 2u, 8u}) {
    std::vector<std::atomic<int>> Seen(256);
    parallelFor(Threads, Seen.size(), [&](size_t I) { Seen[I]++; });
    for (size_t I = 0; I < Seen.size(); ++I)
      EXPECT_EQ(Seen[I].load(), 1) << "index " << I << " at " << Threads
                                   << " threads";
  }
}

TEST(ThreadPool, ParallelForRethrowsWorkerExceptions) {
  EXPECT_THROW(parallelFor(4, 16,
                           [](size_t I) {
                             if (I == 7)
                               throw std::runtime_error("index 7");
                           }),
               std::runtime_error);
}

TEST(StatsConcurrency, CountersSurviveAHammer) {
  const std::string Key = "test.hammer_counter";
  int64_t Before = Stats::get().counter(Key);
  parallelFor(8, 8, [&](size_t) {
    for (int I = 0; I < 1000; ++I)
      Stats::get().add(Key);
  });
  EXPECT_EQ(Stats::get().counter(Key) - Before, 8000);
  double TBefore = Stats::get().timer("test.hammer_timer");
  parallelFor(8, 8, [&](size_t) {
    for (int I = 0; I < 100; ++I)
      Stats::get().addTime("test.hammer_timer", 0.001);
  });
  EXPECT_NEAR(Stats::get().timer("test.hammer_timer") - TBefore, 0.8, 1e-9);
}

TEST(EnvConcurrency, GuardedAccessorsSurviveAHammer) {
  parallelFor(8, 8, [&](size_t I) {
    std::string Name = "AKG_TEST_ENV_" + std::to_string(I);
    for (int J = 0; J < 200; ++J) {
      env::set(Name.c_str(), std::to_string(J));
      // Interleave reads of a variable other threads are writing.
      (void)env::get("AKG_TEST_ENV_0");
      (void)env::isSet("AKG_TEST_ENV_7");
    }
  });
  for (size_t I = 0; I < 8; ++I) {
    std::string Name = "AKG_TEST_ENV_" + std::to_string(I);
    auto V = env::get(Name.c_str());
    ASSERT_TRUE(V.has_value());
    EXPECT_EQ(*V, "199");
    env::unset(Name.c_str());
  }
}

TEST(CompileService, ThreadCountResolution) {
  EXPECT_EQ(compileServiceThreads(3), 3u);
  env::unset("AKG_THREADS");
  EXPECT_EQ(compileServiceThreads(0), 1u); // unset -> sequential
  env::set("AKG_THREADS", "6");
  EXPECT_EQ(compileServiceThreads(0), 6u);
  EXPECT_EQ(compileServiceThreads(2), 2u); // explicit beats env
  env::set("AKG_THREADS", "not_a_number");
  EXPECT_EQ(compileServiceThreads(0), 1u);
  env::set("AKG_THREADS", "100000");
  EXPECT_EQ(compileServiceThreads(0), 256u); // clamped
  env::unset("AKG_THREADS");
}

TEST(CompileService, NetworkJobsExpandOccurrences) {
  NetworkModel N = buildAlexNet();
  AkgOptions Base;
  std::vector<CompileJob> Distinct = networkCompileJobs(N, Base);
  EXPECT_EQ(Distinct.size(), N.Layers.size());
  int64_t Occurrences = 0;
  for (const LayerWorkload &L : N.Layers)
    Occurrences += L.Count;
  std::vector<CompileJob> All =
      networkCompileJobs(N, Base, /*PerOccurrence=*/true);
  EXPECT_EQ(All.size(), static_cast<size_t>(Occurrences));
  // Per-occurrence names stay unique; distinct names carry net/layer.
  EXPECT_EQ(Distinct.front().Name, N.Name + "/" + N.Layers.front().Name);
}

/// The satellite contract: the Fig 13 network set compiled at 1 and 4
/// threads (and again from the warm cache) yields identical CCE kernel
/// dumps and identical DegradationReports.
TEST(CompileService, Fig13NetworksDeterministicAcrossThreadCounts) {
  NetworkModel Nets[6] = {buildResNet50(), buildMobileNetV2(),
                          buildAlexNet(), buildBert(21128),
                          buildBert(30522), buildSsd()};
  AkgOptions Base;
  std::vector<CompileJob> Jobs;
  for (const NetworkModel &N : Nets) {
    std::vector<CompileJob> J = networkCompileJobs(N, Base);
    Jobs.insert(Jobs.end(), J.begin(), J.end());
  }
  ASSERT_GT(Jobs.size(), 30u);

  KernelCache Cache1;
  CompileServiceOptions One;
  One.Threads = 1;
  One.Cache = &Cache1;
  std::vector<CompileResult> R1 = compileModulesParallel(Jobs, One);

  KernelCache Cache4;
  CompileServiceOptions Four;
  Four.Threads = 4;
  Four.Cache = &Cache4;
  std::vector<CompileResult> R4 = compileModulesParallel(Jobs, Four);
  KernelCacheStats Cold = Cache4.stats();

  // Same jobs against the already-warm 4-thread cache.
  std::vector<CompileResult> RW = compileModulesParallel(Jobs, Four);

  ASSERT_EQ(R1.size(), Jobs.size());
  ASSERT_EQ(R4.size(), Jobs.size());
  ASSERT_EQ(RW.size(), Jobs.size());
  for (size_t I = 0; I < Jobs.size(); ++I) {
    std::string D1 = cce::printKernel(R1[I].Kernel);
    EXPECT_EQ(D1, cce::printKernel(R4[I].Kernel))
        << Jobs[I].Name << ": 1-thread vs 4-thread kernels differ";
    EXPECT_EQ(D1, cce::printKernel(RW[I].Kernel))
        << Jobs[I].Name << ": cold vs warm kernels differ";
    EXPECT_EQ(R1[I].Degradation.str(), R4[I].Degradation.str())
        << Jobs[I].Name << ": degradation reports differ across threads";
    EXPECT_EQ(R1[I].Degradation.str(), RW[I].Degradation.str())
        << Jobs[I].Name << ": degradation reports differ cold vs warm";
    EXPECT_EQ(R1[I].Kernel.Name, Jobs[I].Name); // results in job order
  }
  // The warm pass must have been served entirely from the cache: every
  // job a hit, no new compiles. (The cold pass can record a few hits of
  // its own - BERT's two vocabularies share most of their layers.)
  KernelCacheStats S = Cache4.stats();
  EXPECT_EQ(S.Hits - Cold.Hits, static_cast<int64_t>(Jobs.size()));
  EXPECT_EQ(S.Misses, Cold.Misses);
}

// --- Chaos spec: grammar + seeded determinism (DESIGN.md 4h) -------------

TEST(ChaosSpec, ParsesTheFullGrammar) {
  std::string Err;
  auto S = ChaosSpec::parse(
      "seed=42,fault=0.1,transient=0.25,delay=0.2:15,hang=0.01:500", &Err);
  ASSERT_TRUE(S.has_value()) << Err;
  EXPECT_EQ(S->Seed, 42u);
  EXPECT_DOUBLE_EQ(S->FaultP, 0.1);
  EXPECT_DOUBLE_EQ(S->TransientP, 0.25);
  EXPECT_DOUBLE_EQ(S->DelayP, 0.2);
  EXPECT_DOUBLE_EQ(S->DelayMs, 15);
  EXPECT_DOUBLE_EQ(S->HangP, 0.01);
  EXPECT_DOUBLE_EQ(S->HangMs, 500);
  EXPECT_TRUE(S->enabled());
  // Defaults: empty spec parses but is disabled.
  auto Empty = ChaosSpec::parse("");
  ASSERT_TRUE(Empty.has_value());
  EXPECT_FALSE(Empty->enabled());
}

TEST(ChaosSpec, RejectsMalformedSpecs) {
  for (const char *Bad : {"fault", "fault=", "fault=x", "fault=1.5",
                          "bogus=1", "delay=0.1:abc", "fault=0.1:5",
                          "seed=nope"}) {
    std::string Err;
    EXPECT_FALSE(ChaosSpec::parse(Bad, &Err).has_value()) << Bad;
    EXPECT_FALSE(Err.empty()) << Bad;
  }
}

TEST(ChaosSpec, DecisionsAreAPureFunctionOfSeedNameAttempt) {
  ChaosSpec S;
  S.Seed = 7;
  S.FaultP = 0.5;
  S.DelayP = 0.3;
  for (int I = 0; I < 32; ++I) {
    std::string Name = "net/layer#" + std::to_string(I);
    ChaosAction A = chaosDecide(S, Name, 0);
    ChaosAction B = chaosDecide(S, Name, 0);
    EXPECT_EQ(static_cast<int>(A.K), static_cast<int>(B.K)) << Name;
    EXPECT_EQ(A.Transient, B.Transient);
    EXPECT_DOUBLE_EQ(A.Ms, B.Ms);
  }
  // A different seed or attempt redraws the whole run.
  ChaosSpec S2 = S;
  S2.Seed = 8;
  bool AnyDiffer = false;
  for (int I = 0; I < 64 && !AnyDiffer; ++I) {
    std::string Name = "net/layer#" + std::to_string(I);
    AnyDiffer |= static_cast<int>(chaosDecide(S, Name, 0).K) !=
                 static_cast<int>(chaosDecide(S2, Name, 0).K);
    AnyDiffer |= static_cast<int>(chaosDecide(S, Name, 0).K) !=
                 static_cast<int>(chaosDecide(S, Name, 1).K);
  }
  EXPECT_TRUE(AnyDiffer);
}

// --- Quarantine: poison-pill negative cache ------------------------------

TEST(Quarantine, ArmsAtThresholdAndOnlyOnDeterministicFailures) {
  auto M = graph::makeMatmul(32, 32, 32);
  CacheKey K = makeCacheKey(*M, AkgOptions());
  QuarantineOptions QO;
  QO.FailureThreshold = 3;
  Quarantine Q(QO);
  // Non-deterministic codes never count, no matter how many.
  for (int I = 0; I < 10; ++I) {
    Q.recordFailure(K, ErrCode::DeadlineExceeded, "slow");
    Q.recordFailure(K, ErrCode::Cancelled, "cancelled");
    Q.recordFailure(K, ErrCode::Unavailable, "transient");
    Q.recordFailure(K, ErrCode::Overloaded, "shed");
  }
  EXPECT_FALSE(Q.check(K).has_value());
  // Deterministic failures arm at the threshold.
  Q.recordFailure(K, ErrCode::Internal, "boom");
  Q.recordFailure(K, ErrCode::FaultInjected, "boom");
  EXPECT_FALSE(Q.check(K).has_value()); // 2 of 3: still compiling
  Q.recordFailure(K, ErrCode::Internal, "boom");
  auto Why = Q.check(K);
  ASSERT_TRUE(Why.has_value());
  EXPECT_NE(Why->find("boom"), std::string::npos);
  QuarantineStats S = Q.stats();
  EXPECT_EQ(S.Armed, 1);
  EXPECT_EQ(S.FastFails, 1);
}

TEST(Quarantine, SuccessClearsAndTtlGivesAFreshStart) {
  auto M = graph::makeMatmul(32, 32, 32);
  CacheKey K = makeCacheKey(*M, AkgOptions());
  QuarantineOptions QO;
  QO.FailureThreshold = 1;
  QO.TtlSeconds = 0.05;
  Quarantine Q(QO);
  Q.recordFailure(K, ErrCode::Internal, "dies");
  EXPECT_TRUE(Q.check(K).has_value());
  // The TTL lapses: the fingerprint gets a completely fresh start (the
  // accumulated failure count does not survive).
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_FALSE(Q.check(K).has_value());
  EXPECT_EQ(Q.size(), 0u);
  // And a success wipes a counting entry before it arms.
  QuarantineOptions QO2;
  QO2.FailureThreshold = 2;
  Quarantine Q2(QO2);
  Q2.recordFailure(K, ErrCode::Internal, "dies");
  Q2.recordSuccess(K);
  Q2.recordFailure(K, ErrCode::Internal, "dies");
  EXPECT_FALSE(Q2.check(K).has_value()); // 1 of 2 after the clear
}

// --- CompileService: admission, deadlines, retries, quarantine -----------

TEST(CompileService, CleanRequestCompilesWithServiceLatency) {
  auto M = graph::makeMatmul(32, 32, 32);
  KernelCache Cache;
  CompileService::Options SO;
  SO.Threads = 1; // inline: deterministic
  SO.Cache = &Cache;
  CompileService Svc(SO);
  CompileResult R = Svc.submit(*M, AkgOptions(), "clean").get();
  EXPECT_TRUE(R.Outcome.isOk());
  EXPECT_GT(R.ServiceSeconds, 0);
  EXPECT_FALSE(cce::printKernel(R.Kernel).empty());
  ServiceStats S = Svc.stats();
  EXPECT_EQ(S.Submitted, 1);
  EXPECT_EQ(S.Completed, 1);
  EXPECT_EQ(S.Shed + S.Degraded + S.Quarantined, 0);
}

TEST(CompileService, PreCancelledRequestFailsFastWithCancelled) {
  auto M = graph::makeMatmul(32, 32, 32);
  CompileService::Options SO;
  SO.Threads = 1;
  SO.Cache = nullptr;
  CompileService Svc(SO);
  AkgOptions O;
  O.Cancel = std::make_shared<CancelToken>();
  O.Cancel->requestCancel();
  CompileResult R = Svc.submit(*M, O, "cancelled").get();
  EXPECT_EQ(R.Outcome.code(), ErrCode::Cancelled);
  EXPECT_EQ(R.Trace.Outcome, "cancelled");
  EXPECT_FALSE(cce::printKernel(R.Kernel).empty()); // scalar fallback
}

TEST(CompileService, ServiceDefaultDeadlineInherited) {
  auto M = graph::makeMatmul(96, 96, 96);
  CompileService::Options SO;
  SO.Threads = 1;
  SO.Cache = nullptr;
  SO.DefaultDeadlineMs = 1e-3; // expires in the queue
  CompileService Svc(SO);
  CompileResult R = Svc.submit(*M, AkgOptions(), "svc_deadline").get();
  EXPECT_EQ(R.Outcome.code(), ErrCode::DeadlineExceeded);
  // The request's own (generous) deadline beats the service default.
  AkgOptions O;
  O.RequestDeadlineMs = 60000;
  CompileResult R2 = Svc.submit(*M, O, "own_deadline").get();
  EXPECT_TRUE(R2.Outcome.isOk());
}

TEST(CompileService, RejectPolicyShedsWithOverloaded) {
  auto M = graph::makeMatmul(32, 32, 32);
  ChaosSpec Delay;            // park every worker 80ms per request
  Delay.DelayP = 1.0;
  Delay.DelayMs = 80;
  KernelCache Cache;
  CompileService::Options SO;
  SO.Threads = 2;
  SO.QueueDepth = 1;
  SO.Shed = ShedPolicy::Reject;
  SO.Cache = &Cache;
  SO.Chaos = Delay;
  CompileService Svc(SO);
  std::vector<std::future<CompileResult>> Futs;
  for (int I = 0; I < 12; ++I)
    Futs.push_back(Svc.submit(*M, AkgOptions(), "r" + std::to_string(I)));
  size_t Shed = 0, Ok = 0;
  for (auto &F : Futs) {
    CompileResult R = F.get();
    if (R.Outcome.code() == ErrCode::Overloaded) {
      ++Shed;
      // Reject sheds carry no kernel and a terminal "shed" event.
      EXPECT_NE(R.Trace.find("shed"), nullptr);
    } else if (R.Outcome.isOk()) {
      ++Ok;
    }
  }
  EXPECT_GE(Shed, 1u); // 2 workers + depth 1 cannot absorb 12 at once
  EXPECT_GE(Ok, 1u);
  ServiceStats S = Svc.stats();
  EXPECT_EQ(S.Shed, static_cast<int64_t>(Shed));
  EXPECT_EQ(S.Completed + S.Shed, S.Submitted); // nothing hung
}

TEST(CompileService, DegradePolicyServesTheScalarRung) {
  auto M = graph::makeMatmul(32, 32, 32);
  ChaosSpec Delay;
  Delay.DelayP = 1.0;
  Delay.DelayMs = 80;
  KernelCache Cache;
  CompileService::Options SO;
  SO.Threads = 2;
  SO.QueueDepth = 1;
  SO.Shed = ShedPolicy::Degrade;
  SO.Cache = &Cache;
  SO.Chaos = Delay;
  CompileService Svc(SO);
  std::vector<std::future<CompileResult>> Futs;
  for (int I = 0; I < 12; ++I)
    Futs.push_back(Svc.submit(*M, AkgOptions(), "d" + std::to_string(I)));
  size_t Degraded = 0;
  for (auto &F : Futs) {
    CompileResult R = F.get();
    // Every request succeeds under Degrade; shed ones get the scalar rung.
    EXPECT_TRUE(R.Outcome.isOk());
    EXPECT_FALSE(cce::printKernel(R.Kernel).empty());
    if (R.Trace.find("shed"))
      ++Degraded;
  }
  EXPECT_GE(Degraded, 1u);
  ServiceStats S = Svc.stats();
  EXPECT_EQ(S.Degraded, static_cast<int64_t>(Degraded));
  EXPECT_EQ(S.Shed, 0);
}

TEST(CompileService, TransientFaultsRetryThenReportUnavailable) {
  auto M = graph::makeMatmul(32, 32, 32);
  ChaosSpec AllTransient; // every attempt faults transiently
  AllTransient.FaultP = 1.0;
  AllTransient.TransientP = 1.0;
  CompileService::Options SO;
  SO.Threads = 1;
  SO.Cache = nullptr;
  SO.MaxRetries = 2;
  SO.RetryBackoffMs = 0.1;
  SO.Chaos = AllTransient;
  CompileService Svc(SO);
  CompileResult R = Svc.submit(*M, AkgOptions(), "transient").get();
  EXPECT_EQ(R.Outcome.code(), ErrCode::Unavailable);
  ServiceStats S = Svc.stats();
  EXPECT_EQ(S.Retries, 2);        // both retry budget slots spent
  EXPECT_EQ(S.FaultsInjected, 3); // initial attempt + 2 retries
  // Transient faults never arm the quarantine.
  EXPECT_EQ(Svc.quarantine().stats().Armed, 0);
}

TEST(CompileService, DeterministicFaultsArmTheQuarantine) {
  auto M = graph::makeMatmul(32, 32, 32);
  ChaosSpec AllFault; // every attempt faults deterministically
  AllFault.FaultP = 1.0;
  AllFault.TransientP = 0.0;
  KernelCache Cache;
  CompileService::Options SO;
  SO.Threads = 1;
  SO.Cache = &Cache;
  SO.Chaos = AllFault;
  SO.QuarantineOpts.FailureThreshold = 2;
  CompileService Svc(SO);
  std::vector<ErrCode> Codes;
  for (int I = 0; I < 4; ++I)
    Codes.push_back(
        Svc.submit(*M, AkgOptions(), "poison").get().Outcome.code());
  // Two injected failures arm the entry; the rest fail fast.
  EXPECT_EQ(Codes[0], ErrCode::FaultInjected);
  EXPECT_EQ(Codes[1], ErrCode::FaultInjected);
  EXPECT_EQ(Codes[2], ErrCode::Quarantined);
  EXPECT_EQ(Codes[3], ErrCode::Quarantined);
  ServiceStats S = Svc.stats();
  EXPECT_EQ(S.Quarantined, 2);
  EXPECT_EQ(Svc.quarantine().stats().Armed, 1);
  EXPECT_EQ(Svc.quarantine().stats().FastFails, 2);
}

TEST(CompileService, ChaosRunMatchesChaosFreeKernels) {
  // The acceptance bar in miniature: a seeded fault+delay run over the
  // AlexNet stream returns bit-identical kernels for every request chaos
  // did not shed or fault, and strands nothing.
  NetworkModel N = buildAlexNet();
  AkgOptions Base;
  Base.RequestDeadlineMs = 60000;
  std::vector<CompileJob> Jobs =
      networkCompileJobs(N, Base, /*PerOccurrence=*/true);

  KernelCache RefCache;
  CompileServiceOptions RO;
  RO.Threads = 2;
  RO.Cache = &RefCache;
  std::vector<CompileResult> Ref = compileModulesParallel(Jobs, RO);

  ChaosSpec Spec;
  Spec.Seed = 42;
  Spec.FaultP = 0.15;
  Spec.TransientP = 0.0;
  Spec.DelayP = 0.1;
  Spec.DelayMs = 5;
  KernelCache Cache;
  CompileService::Options SO;
  SO.Threads = 2;
  SO.Cache = &Cache;
  SO.Chaos = Spec;
  CompileService Svc(SO);
  std::vector<CompileResult> Res = Svc.compileAll(Jobs);

  ASSERT_EQ(Res.size(), Jobs.size());
  size_t Clean = 0;
  for (size_t I = 0; I < Jobs.size(); ++I) {
    if (!Res[I].Outcome.isOk() || Res[I].Trace.find("shed"))
      continue;
    ++Clean;
    EXPECT_EQ(cce::printKernel(Res[I].Kernel),
              cce::printKernel(Ref[I].Kernel))
        << Jobs[I].Name;
  }
  EXPECT_GT(Clean, 0u);
  ServiceStats S = Svc.stats();
  EXPECT_EQ(S.Completed + S.Shed + S.Degraded, S.Submitted);
}

TEST(CompileService, NullCacheCompilesEveryJob) {
  NetworkModel N = buildAlexNet();
  AkgOptions Base;
  std::vector<CompileJob> Jobs =
      networkCompileJobs(N, Base, /*PerOccurrence=*/true);
  CompileServiceOptions SO;
  SO.Threads = 2;
  SO.Cache = nullptr; // pre-cache behavior: compile everything
  std::vector<CompileResult> R = compileModulesParallel(Jobs, SO);
  ASSERT_EQ(R.size(), Jobs.size());
  for (size_t I = 0; I < Jobs.size(); ++I)
    EXPECT_EQ(R[I].Kernel.Name, Jobs[I].Name);
}

} // namespace
