//===- tests/CompilerTest.cpp - End-to-end AKG pipeline tests -------------===//
//
// Each test compiles a DSL module with the full AKG pipeline, runs the CCE
// kernel on the functional simulator and compares every output with the
// reference evaluator.
//
//===----------------------------------------------------------------------===//

#include "akg/Compiler.h"

#include <gtest/gtest.h>

using namespace akg;
using namespace akg::ir;

namespace {

void compileAndCheck(const Module &M, const AkgOptions &Opts,
                     double Tol = 1e-3,
                     CompileResult *OutRes = nullptr) {
  CompileResult R = compileWithAkg(M, Opts, "test_kernel");
  double Err = verifyKernel(R.Kernel, M, Opts.Codegen.Machine);
  EXPECT_LE(Err, Tol) << "kernel output mismatch\n"
                      << cce::printKernel(R.Kernel);
  if (OutRes)
    *OutRes = std::move(R);
}

Module elementwiseAdd(int64_t N, int64_t Mm) {
  Module M;
  Tensor A = M.placeholder("A", {N, Mm});
  Tensor B = M.placeholder("B", {N, Mm});
  M.compute("C", {N, Mm}, [&](const std::vector<Expr> &I) {
    return add(tensorRead(A, {I[0], I[1]}), tensorRead(B, {I[0], I[1]}));
  });
  return M;
}

TEST(AkgCompiler, ElementwiseAdd) {
  Module M = elementwiseAdd(64, 96);
  CompileResult R;
  compileAndCheck(M, AkgOptions{}, 1e-3, &R);
  // Vectorized, DMA in and out, flags inserted.
  EXPECT_GT(cce::countInstrs(R.Kernel, cce::InstrKind::VectorOp), 0u);
  EXPECT_GT(cce::countInstrs(R.Kernel, cce::InstrKind::Dma), 0u);
  EXPECT_GT(R.Sync.FlagsInserted, 0u);
}

TEST(AkgCompiler, FusedConvChain) {
  // The paper's running example: bias-add producer + conv + abs + relu.
  Module M;
  Tensor A = M.placeholder("A", {20, 20});
  Tensor B = M.placeholder("B", {3, 3});
  Tensor A2 = M.compute("A2", {20, 20}, [&](const std::vector<Expr> &I) {
    return add(tensorRead(A, {I[0], I[1]}), floatImm(0.5));
  });
  IterVar Kh = M.reduceAxis(3, "kh");
  IterVar Kw = M.reduceAxis(3, "kw");
  Tensor C = M.compute("C", {18, 18}, [&](const std::vector<Expr> &I) {
    Expr Prod = mul(tensorRead(A2, {add(I[0], var("kh")),
                                    add(I[1], var("kw"))}),
                    tensorRead(B, {var("kh"), var("kw")}));
    return reduce(ReduceKind::Sum, Prod, {Kh, Kw});
  });
  Tensor C2 = M.compute("C2", {18, 18}, [&](const std::vector<Expr> &I) {
    return call("abs", {tensorRead(C, {I[0], I[1]})}, DType::F16);
  });
  M.compute("C3", {18, 18}, [&](const std::vector<Expr> &I) {
    return call("relu", {tensorRead(C2, {I[0], I[1]})}, DType::F16);
  });
  CompileResult R;
  compileAndCheck(M, AkgOptions{}, 1e-3, &R);
  EXPECT_EQ(R.FusedProducers, 1u);       // A2 localized
  EXPECT_GT(cce::countInstrs(R.Kernel, cce::InstrKind::Mmad), 0u);
  EXPECT_GT(cce::countInstrs(R.Kernel, cce::InstrKind::Img2Col), 0u);
}

TEST(AkgCompiler, Matmul) {
  Module M;
  Tensor A = M.placeholder("A", {48, 40});
  Tensor B = M.placeholder("B", {40, 56});
  IterVar K = M.reduceAxis(40, "k");
  M.compute("C", {48, 56}, [&](const std::vector<Expr> &I) {
    return reduce(ReduceKind::Sum,
                  mul(tensorRead(A, {I[0], var("k")}),
                      tensorRead(B, {var("k"), I[1]})),
                  {K});
  }, DType::F32);
  CompileResult R;
  compileAndCheck(M, AkgOptions{}, 1e-2, &R);
  EXPECT_GT(cce::countInstrs(R.Kernel, cce::InstrKind::Mmad), 0u);
  EXPECT_GT(cce::countInstrs(R.Kernel, cce::InstrKind::LoadFractal), 0u);
}

TEST(AkgCompiler, MatmulWithBiasRelu) {
  Module M;
  Tensor A = M.placeholder("A", {32, 32});
  Tensor B = M.placeholder("B", {32, 32});
  Tensor Bias = M.placeholder("bias", {32});
  IterVar K = M.reduceAxis(32, "k");
  Tensor C = M.compute("C", {32, 32}, [&](const std::vector<Expr> &I) {
    return reduce(ReduceKind::Sum,
                  mul(tensorRead(A, {I[0], var("k")}),
                      tensorRead(B, {var("k"), I[1]})),
                  {K});
  }, DType::F32);
  M.compute("D", {32, 32}, [&](const std::vector<Expr> &I) {
    return call("relu",
                {add(tensorRead(C, {I[0], I[1]}),
                     tensorRead(Bias, {I[1]}))},
                DType::F32);
  }, DType::F32);
  compileAndCheck(M, AkgOptions{}, 1e-2);
}

TEST(AkgCompiler, Transpose) {
  Module M;
  Tensor A = M.placeholder("A", {33, 65});
  M.compute("B", {65, 33}, [&](const std::vector<Expr> &I) {
    return tensorRead(A, {I[1], I[0]});
  });
  compileAndCheck(M, AkgOptions{});
}

TEST(AkgCompiler, CastAndScale) {
  Module M;
  Tensor A = M.placeholder("A", {40, 50}, DType::F16);
  M.compute("B", {40, 50}, [&](const std::vector<Expr> &I) {
    return mul(cast(DType::F32, tensorRead(A, {I[0], I[1]})),
               floatImm(3.0, DType::F32));
  }, DType::F32);
  compileAndCheck(M, AkgOptions{});
}

TEST(AkgCompiler, OneHot) {
  Module M;
  Tensor Idx = M.placeholder("idx", {16}, DType::I32);
  M.compute("OH", {16, 10}, [&](const std::vector<Expr> &I) {
    return select(cmp(ExprKind::CmpEQ, tensorRead(Idx, {I[0]}),
                      cast(DType::F32, I[1])),
                  floatImm(1.0), floatImm(0.0));
  });
  compileAndCheck(M, AkgOptions{});
}

TEST(AkgCompiler, BatchNormStyleReduction) {
  // Non-cube reduction: mean over the spatial dims (streams to UB,
  // vector-reduced).
  Module M;
  Tensor A = M.placeholder("A", {8, 64});
  IterVar J = M.reduceAxis(64, "j");
  Tensor S = M.compute("S", {8}, [&](const std::vector<Expr> &I) {
    return reduce(ReduceKind::Sum, tensorRead(A, {I[0], var("j")}), {J});
  }, DType::F32);
  M.compute("Mean", {8}, [&](const std::vector<Expr> &I) {
    return mul(tensorRead(S, {I[0]}), floatImm(1.0 / 64.0, DType::F32));
  }, DType::F32);
  compileAndCheck(M, AkgOptions{}, 1e-2);
}

TEST(AkgCompiler, ReluOnOddShapes) {
  Module M;
  Tensor A = M.placeholder("A", {37, 53});
  M.compute("B", {37, 53}, [&](const std::vector<Expr> &I) {
    return call("relu", {tensorRead(A, {I[0], I[1]})}, DType::F16);
  });
  compileAndCheck(M, AkgOptions{});
}

TEST(AkgCompiler, NoFusionAblationStillCorrect) {
  Module M;
  Tensor A = M.placeholder("A", {24, 24});
  Tensor B = M.compute("B", {24, 24}, [&](const std::vector<Expr> &I) {
    return add(tensorRead(A, {I[0], I[1]}), floatImm(1.0));
  });
  IterVar K = M.reduceAxis(3, "k");
  M.compute("C", {22, 24}, [&](const std::vector<Expr> &I) {
    return reduce(ReduceKind::Sum,
                  tensorRead(B, {add(I[0], var("k")), I[1]}), {K});
  });
  AkgOptions Opts;
  Opts.EnablePostTilingFusion = false;
  compileAndCheck(M, Opts, 1e-3);
}

TEST(AkgCompiler, BatchedMatmul) {
  Module M;
  Tensor A = M.placeholder("A", {4, 24, 20});
  Tensor B = M.placeholder("B", {4, 20, 28});
  IterVar K = M.reduceAxis(20, "k");
  M.compute("C", {4, 24, 28}, [&](const std::vector<Expr> &I) {
    return reduce(ReduceKind::Sum,
                  mul(tensorRead(A, {I[0], I[1], var("k")}),
                      tensorRead(B, {I[0], var("k"), I[2]})),
                  {K});
  }, DType::F32);
  compileAndCheck(M, AkgOptions{}, 1e-2);
}

TEST(AkgCompiler, Conv2dNchw) {
  // Full NCHW convolution with stride and padding expressed via guarded
  // reads (the img2col path must reproduce the padding).
  int64_t N = 2, Ci = 3, H = 10, W = 10, Co = 4, KH = 3, KW = 3;
  int64_t Pad = 1, Stride = 1;
  int64_t Ho = (H + 2 * Pad - KH) / Stride + 1;
  int64_t Wo = (W + 2 * Pad - KW) / Stride + 1;
  Module M;
  Tensor I = M.placeholder("I", {N, Ci, H, W});
  Tensor Wt = M.placeholder("Wt", {Co, Ci, KH, KW});
  IterVar Rc = M.reduceAxis(Ci, "rc");
  IterVar Rh = M.reduceAxis(KH, "rh");
  IterVar Rw = M.reduceAxis(KW, "rw");
  M.compute("O", {N, Co, Ho, Wo}, [&](const std::vector<Expr> &Ix) {
    Expr Hh = sub(add(mul(Ix[2], intImm(Stride)), var("rh")), intImm(Pad));
    Expr Ww = sub(add(mul(Ix[3], intImm(Stride)), var("rw")), intImm(Pad));
    Expr InB = binary(ExprKind::And,
                      binary(ExprKind::And, cmp(ExprKind::CmpLE, intImm(0), Hh),
                             cmp(ExprKind::CmpLT, Hh, intImm(H))),
                      binary(ExprKind::And, cmp(ExprKind::CmpLE, intImm(0), Ww),
                             cmp(ExprKind::CmpLT, Ww, intImm(W))));
    Expr Read = select(InB, tensorRead(I, {Ix[0], var("rc"), Hh, Ww}),
                       floatImm(0.0));
    return reduce(ReduceKind::Sum,
                  mul(Read, tensorRead(Wt, {Ix[1], var("rc"), var("rh"),
                                            var("rw")})),
                  {Rc, Rh, Rw});
  }, DType::F32);
  CompileResult R;
  compileAndCheck(M, AkgOptions{}, 1e-2, &R);
  EXPECT_GT(cce::countInstrs(R.Kernel, cce::InstrKind::Img2Col), 0u);
}

} // namespace
