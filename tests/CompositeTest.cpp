//===- tests/CompositeTest.cpp - Composite JSON frontend tests ------------===//
//
// The differential battery for the composite-subgraph frontend
// (src/composite): a negative-parse matrix proving malformed payloads
// produce structured Diags and never crash, golden-file normalization
// tests pinning the exact canonical output of transform-op elimination,
// round-trip differentials (parse(serialize(m)) compiles bit-identically
// and lands on the same kernel-cache fingerprint), and serving-layer
// ingress through CompileService::submitJson.
//
//===----------------------------------------------------------------------===//

#include "akg/CompileService.h"
#include "akg/Compiler.h"
#include "akg/KernelCache.h"
#include "composite/Composite.h"
#include "composite/ElimTransform.h"
#include "composite/Json.h"
#include "ir/PolyExtract.h"
#include "support/Stats.h"
#include "target/Codegen.h"
#include "verify/Generator.h"
#include "verify/Oracle.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace akg;
using namespace akg::composite;

namespace {

std::string dataPath(const std::string &Name) {
  return std::string(AKG_TEST_DATA_DIR) + "/composite/" + Name;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::string rstrip(std::string S) {
  while (!S.empty() && (S.back() == '\n' || S.back() == ' '))
    S.pop_back();
  return S;
}

//===----------------------------------------------------------------------===//
// JSON layer
//===----------------------------------------------------------------------===//

TEST(CompositeJson, ParseDumpRoundTrip) {
  Json V;
  JsonError E;
  ASSERT_TRUE(parseJson(
      R"({"a": [1, 2.5, true, null, "s\n"], "b": {"c": -7}})", V, E))
      << E.str();
  EXPECT_EQ(dumpJson(V), R"({"a":[1,2.5,true,null,"s\n"],"b":{"c":-7}})");
  Json V2;
  ASSERT_TRUE(parseJson(dumpJson(V, true), V2, E));
  EXPECT_EQ(dumpJson(V2), dumpJson(V));
}

TEST(CompositeJson, DepthCapRejected) {
  std::string Deep(200, '[');
  Json V;
  JsonError E;
  EXPECT_FALSE(parseJson(Deep, V, E));
  EXPECT_NE(E.Message.find("depth"), std::string::npos) << E.str();
}

TEST(CompositeJson, ErrorCarriesLineAndColumn) {
  Json V;
  JsonError E;
  EXPECT_FALSE(parseJson("{\n  \"a\": 1,\n  oops\n}", V, E));
  EXPECT_EQ(E.Line, 3);
}

//===----------------------------------------------------------------------===//
// Negative-parse matrix: every malformed payload yields clean Diags
//===----------------------------------------------------------------------===//

// A well-formed single-op payload the negative cases mutate.
std::string basePayload() {
  return R"({
    "composite": true, "op": "neg_base", "platform": "AKG",
    "input_desc": [{"tensor_name": "x", "shape": [4, 8], "data_type": "float16"}],
    "op_desc": [{
      "name": "Relu", "attr": null,
      "input_desc": [[{"tensor_name": "x", "shape": [4, 8], "data_type": "float16"}]],
      "output_desc": [{"tensor_name": "y", "shape": [4, 8], "data_type": "float16"}]}],
    "output_desc": [{"tensor_name": "y", "shape": [4, 8], "data_type": "float16"}]})";
}

struct NegativeCase {
  const char *Name;
  std::string Payload;
  const char *ExpectSubstring; // must appear in some diag
};

std::vector<NegativeCase> negativeCases() {
  std::vector<NegativeCase> C;
  C.push_back({"truncated", basePayload().substr(0, 90), "malformed JSON"});
  C.push_back({"top_level_array", "[1, 2, 3]", "object"});
  C.push_back({"missing_op_name",
               R"({"composite": true, "input_desc": [], "op_desc": [],
                   "output_desc": []})",
               "op"});
  {
    std::string P = basePayload();
    auto At = P.find("[4, 8]");
    P.replace(At, 6, "\"4x8\"");
    C.push_back({"wrong_typed_shape", P, "shape"});
  }
  {
    std::string P = basePayload();
    auto At = P.find("\"Relu\"");
    P.replace(At, 6, "\"Conv9000\"");
    C.push_back({"unknown_op", P, "Conv9000"});
  }
  {
    std::string P = basePayload();
    auto At = P.find("\"tensor_name\": \"x\", \"shape\": [4, 8]",
                     P.find("op_desc"));
    P.replace(At + 15, 3, "\"nope\"");
    C.push_back({"undefined_tensor", P, "nope"});
  }
  {
    std::string P = basePayload();
    // Consumer disagrees with the producer about x's shape.
    auto At = P.find("[4, 8]", P.find("op_desc"));
    P.replace(At, 6, "[8, 4]");
    C.push_back({"edge_shape_mismatch", P, "shape"});
  }
  C.push_back(
      {"cyclic_graph",
       R"({"composite": true, "op": "cyc", "platform": "AKG",
           "input_desc": [{"tensor_name": "x", "shape": [4], "data_type": "float16"}],
           "op_desc": [
             {"name": "Add", "attr": null,
              "input_desc": [[{"tensor_name": "x", "shape": [4], "data_type": "float16"}],
                             [{"tensor_name": "b", "shape": [4], "data_type": "float16"}]],
              "output_desc": [{"tensor_name": "a", "shape": [4], "data_type": "float16"}]},
             {"name": "Relu", "attr": null,
              "input_desc": [[{"tensor_name": "a", "shape": [4], "data_type": "float16"}]],
              "output_desc": [{"tensor_name": "b", "shape": [4], "data_type": "float16"}]}],
           "output_desc": [{"tensor_name": "b", "shape": [4], "data_type": "float16"}]})",
       "cycle"});
  {
    std::string P = basePayload();
    auto At = P.find("\"tensor_name\": \"y\"");
    P.replace(At + 15, 3, "\"x\"");
    C.push_back({"duplicate_tensor_name", P, "x"});
  }
  C.push_back(
      {"bad_transpose_perm",
       R"({"composite": true, "op": "perm", "platform": "AKG",
           "input_desc": [{"tensor_name": "x", "shape": [4, 8], "data_type": "float16"}],
           "op_desc": [{"name": "Transpose",
              "attr": [{"name": "perm", "value": [0, 0]}],
              "input_desc": [[{"tensor_name": "x", "shape": [4, 8], "data_type": "float16"}]],
              "output_desc": [{"tensor_name": "y", "shape": [4, 4], "data_type": "float16"}]}],
           "output_desc": [{"tensor_name": "y", "shape": [4, 4], "data_type": "float16"}]})",
       "perm"});
  {
    std::string P = basePayload();
    auto At = P.find("\"float16\"");
    P.replace(At, 9, "\"float13\"");
    C.push_back({"bad_dtype", P, "data_type"});
  }
  C.push_back(
      {"reshape_element_mismatch",
       R"({"composite": true, "op": "rs", "platform": "AKG",
           "input_desc": [{"tensor_name": "x", "shape": [4, 8], "data_type": "float16"}],
           "op_desc": [{"name": "Reshape",
              "attr": [{"name": "shape", "value": [31]}],
              "input_desc": [[{"tensor_name": "x", "shape": [4, 8], "data_type": "float16"}]],
              "output_desc": [{"tensor_name": "y", "shape": [31], "data_type": "float16"}]}],
           "output_desc": [{"tensor_name": "y", "shape": [31], "data_type": "float16"}]})",
       "element"});
  {
    std::string P = basePayload();
    auto At = P.find("[4, 8]");
    P.replace(At, 6, "[0, 8]");
    C.push_back({"zero_dim", P, "shape"});
  }
  {
    std::string P = basePayload();
    auto At = P.find("[4, 8]");
    P.replace(At, 6, "[-4, 8]");
    C.push_back({"negative_dim", P, "shape"});
  }
  {
    std::string P = basePayload();
    // Declared graph output names a tensor nothing produces.
    auto At = P.rfind("\"tensor_name\": \"y\"");
    P.replace(At + 15, 3, "\"ghost\"");
    C.push_back({"output_not_produced", P, "ghost"});
  }
  {
    std::string P = basePayload();
    // Two entries in one op's output_desc.
    auto Marker = std::string(
        R"("output_desc": [{"tensor_name": "y", "shape": [4, 8], "data_type": "float16"}]}])");
    auto At = P.find(Marker);
    P.replace(At, Marker.size(),
              R"("output_desc": [{"tensor_name": "y", "shape": [4, 8], "data_type": "float16"},
                                 {"tensor_name": "y2", "shape": [4, 8], "data_type": "float16"}]}])");
    C.push_back({"multi_output_op", P, "output_desc"});
  }
  return C;
}

TEST(CompositeNegative, MatrixYieldsDiagsNeverThrows) {
  for (const NegativeCase &N : negativeCases()) {
    SCOPED_TRACE(N.Name);
    ParseResult R = parseComposite(N.Payload);
    EXPECT_FALSE(R.ok()) << "payload unexpectedly accepted";
    ASSERT_FALSE(R.Diags.empty());
    bool Found = false;
    for (const Diag &D : R.Diags)
      Found |= D.str().find(N.ExpectSubstring) != std::string::npos;
    EXPECT_TRUE(Found) << "no diag mentions '" << N.ExpectSubstring
                       << "'; first: " << R.Diags.front().str();
    // The full frontend path is equally calm about it.
    FrontendResult F = loadComposite(N.Payload);
    EXPECT_FALSE(F.ok());
    EXPECT_FALSE(F.Diags.empty());
  }
}

TEST(CompositeNegative, MergingReshapeThatSurvivesIsUnsupported) {
  // [8,16] -> [128] merges dimensions; it only compiles when the
  // normalizer cancels it, and here it is the declared output.
  FrontendResult F = loadComposite(
      R"({"composite": true, "op": "merge", "platform": "AKG",
          "input_desc": [{"tensor_name": "x", "shape": [8, 16], "data_type": "float16"}],
          "op_desc": [{"name": "Reshape",
             "attr": [{"name": "shape", "value": [128]}],
             "input_desc": [[{"tensor_name": "x", "shape": [8, 16], "data_type": "float16"}]],
             "output_desc": [{"tensor_name": "y", "shape": [128], "data_type": "float16"}]}],
          "output_desc": [{"tensor_name": "y", "shape": [128], "data_type": "float16"}]})");
  EXPECT_FALSE(F.ok());
  EXPECT_EQ(F.Outcome.code(), ErrCode::Unsupported) << F.Outcome.str();
}

//===----------------------------------------------------------------------===//
// Golden-file normalization
//===----------------------------------------------------------------------===//

struct GoldenCase {
  const char *File;
  size_t SurvivingOps;
  unsigned Eliminated;
};

const GoldenCase Goldens[] = {
    {"fused_cast_biasadd_gelu", 2, 2},
    {"transpose_cancel", 1, 2},
    {"transpose_fold", 1, 1},
    {"reshape_chain", 1, 2},
};

TEST(CompositeGolden, NormalizationMatchesCheckedInPayloads) {
  for (const GoldenCase &G : Goldens) {
    SCOPED_TRACE(G.File);
    std::string Before = readFile(dataPath(std::string(G.File) + ".json"));
    std::string After =
        readFile(dataPath(std::string(G.File) + ".norm.json"));
    int64_t C0 = Stats::get().counter("composite.transform_ops_eliminated");
    FrontendResult F = loadComposite(Before);
    ASSERT_TRUE(F.ok()) << F.Outcome.str();
    EXPECT_EQ(F.Normalized.Ops.size(), G.SurvivingOps);
    EXPECT_EQ(F.TransformOpsEliminated, G.Eliminated);
    // The Stats counter moves by exactly the ops eliminated.
    EXPECT_EQ(Stats::get().counter("composite.transform_ops_eliminated") - C0,
              static_cast<int64_t>(G.Eliminated));
    // Canonical serialization is byte-exact against the checked-in golden.
    EXPECT_EQ(rstrip(serializeComposite(F.Normalized, true)), rstrip(After));
    // Eliminated transform ops never reach the polyhedral core: the
    // lowered module has exactly one statement per surviving op.
    ir::PolyProgram P = ir::extractPolyProgram(*F.Mod);
    EXPECT_EQ(P.Stmts.size(), G.SurvivingOps);
    // And the surviving module compiles cleanly.
    CompileResult R = compileWithAkg(*F.Mod, AkgOptions{}, F.KernelName);
    EXPECT_TRUE(R.Outcome.isOk()) << R.Outcome.str();
  }
}

TEST(CompositeGolden, NormalizedPayloadIsAFixpoint) {
  for (const GoldenCase &G : Goldens) {
    SCOPED_TRACE(G.File);
    std::string After =
        readFile(dataPath(std::string(G.File) + ".norm.json"));
    FrontendResult F = loadComposite(After);
    ASSERT_TRUE(F.ok()) << F.Outcome.str();
    EXPECT_EQ(F.TransformOpsEliminated, 0u);
    EXPECT_EQ(rstrip(serializeComposite(F.Normalized, true)), rstrip(After));
  }
}

//===----------------------------------------------------------------------===//
// Transform-elimination unit tests
//===----------------------------------------------------------------------===//

TEST(CompositeElim, IdentityTransformsEliminated) {
  // Identity perm, same-dtype Cast, same-shape Reshape all drop.
  ParseResult R = parseComposite(
      R"({"composite": true, "op": "ident", "platform": "AKG",
          "input_desc": [{"tensor_name": "x", "shape": [4, 8], "data_type": "float16"}],
          "op_desc": [
            {"name": "Transpose", "attr": [{"name": "perm", "value": [0, 1]}],
             "input_desc": [[{"tensor_name": "x", "shape": [4, 8], "data_type": "float16"}]],
             "output_desc": [{"tensor_name": "t0", "shape": [4, 8], "data_type": "float16"}]},
            {"name": "Cast", "attr": [{"name": "dst_type", "value": "float16"}],
             "input_desc": [[{"tensor_name": "t0", "shape": [4, 8], "data_type": "float16"}]],
             "output_desc": [{"tensor_name": "t1", "shape": [4, 8], "data_type": "float16"}]},
            {"name": "Reshape", "attr": [{"name": "shape", "value": [4, 8]}],
             "input_desc": [[{"tensor_name": "t1", "shape": [4, 8], "data_type": "float16"}]],
             "output_desc": [{"tensor_name": "t2", "shape": [4, 8], "data_type": "float16"}]},
            {"name": "Relu", "attr": null,
             "input_desc": [[{"tensor_name": "t2", "shape": [4, 8], "data_type": "float16"}]],
             "output_desc": [{"tensor_name": "y", "shape": [4, 8], "data_type": "float16"}]}],
          "output_desc": [{"tensor_name": "y", "shape": [4, 8], "data_type": "float16"}]})");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(eliminateTransformOps(R.Graph), 3u);
  ASSERT_EQ(R.Graph.Ops.size(), 1u);
  EXPECT_EQ(R.Graph.Ops[0].Type, "Relu");
  EXPECT_EQ(R.Graph.Ops[0].Inputs[0].Desc.Name, "x");
}

TEST(CompositeElim, WideningThenNarrowingCastCollapses) {
  // f16 -> f32 -> f16 is exact, so the pair composes away; the inverse
  // order (f32 -> f16 -> f32) loses bits and must survive.
  ParseResult Exact = parseComposite(readFile(
      dataPath("fused_cast_biasadd_gelu.json")));
  ASSERT_TRUE(Exact.ok());
  EXPECT_EQ(eliminateTransformOps(Exact.Graph), 2u);

  ParseResult Lossy = parseComposite(
      R"({"composite": true, "op": "lossy", "platform": "AKG",
          "input_desc": [{"tensor_name": "x", "shape": [4], "data_type": "float32"}],
          "op_desc": [
            {"name": "Cast", "attr": [{"name": "dst_type", "value": "float16"}],
             "input_desc": [[{"tensor_name": "x", "shape": [4], "data_type": "float32"}]],
             "output_desc": [{"tensor_name": "t", "shape": [4], "data_type": "float16"}]},
            {"name": "Cast", "attr": [{"name": "dst_type", "value": "float32"}],
             "input_desc": [[{"tensor_name": "t", "shape": [4], "data_type": "float16"}]],
             "output_desc": [{"tensor_name": "y", "shape": [4], "data_type": "float32"}]}],
          "output_desc": [{"tensor_name": "y", "shape": [4], "data_type": "float32"}]})");
  ASSERT_TRUE(Lossy.ok());
  EXPECT_EQ(eliminateTransformOps(Lossy.Graph), 0u);
  EXPECT_EQ(Lossy.Graph.Ops.size(), 2u);
}

TEST(CompositeElim, DeclaredOutputTransposeIsNotFolded) {
  // A Transpose whose result is a declared graph output must survive
  // (folding it into consumers would change the output layout).
  ParseResult R = parseComposite(
      R"({"composite": true, "op": "outp", "platform": "AKG",
          "input_desc": [{"tensor_name": "x", "shape": [4, 8], "data_type": "float16"}],
          "op_desc": [
            {"name": "Transpose", "attr": [{"name": "perm", "value": [1, 0]}],
             "input_desc": [[{"tensor_name": "x", "shape": [4, 8], "data_type": "float16"}]],
             "output_desc": [{"tensor_name": "y", "shape": [8, 4], "data_type": "float16"}]}],
          "output_desc": [{"tensor_name": "y", "shape": [8, 4], "data_type": "float16"}]})");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(eliminateTransformOps(R.Graph), 0u);
  ASSERT_EQ(R.Graph.Ops.size(), 1u);
  EXPECT_EQ(R.Graph.Ops[0].Type, "Transpose");
}

//===----------------------------------------------------------------------===//
// Round-trip differential: parse(serialize(m)) is bit-identical
//===----------------------------------------------------------------------===//

TEST(CompositeRoundTrip, GeneratorSeedsCompileBitIdentical) {
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    SCOPED_TRACE("seed " + std::to_string(Seed));
    ir::Module M = verify::generateModule(Seed);
    std::string Payload = moduleToCompositeJson(M, "rt");
    FrontendResult F = loadComposite(Payload);
    ASSERT_TRUE(F.ok()) << F.Outcome.str();
    EXPECT_TRUE(makeCacheKey(M, AkgOptions{}) ==
                makeCacheKey(*F.Mod, AkgOptions{}));
    CompileResult A = compileWithAkg(M, AkgOptions{}, "rt");
    CompileResult B = compileWithAkg(*F.Mod, AkgOptions{}, "rt");
    EXPECT_EQ(cce::printKernel(A.Kernel), cce::printKernel(B.Kernel));
  }
}

TEST(CompositeRoundTrip, OracleReportsJsonRoundTripOutcome) {
  ir::Module M = verify::generateModule(7);
  verify::OracleOptions O;
  O.Level = verify::MatrixLevel::Quick;
  verify::OracleReport Rep = verify::runOracle(M, O);
  EXPECT_TRUE(Rep.Pass) << Rep.str();
  bool Found = false;
  for (const verify::ConfigOutcome &Out : Rep.Outcomes)
    if (Out.Config == "json_roundtrip")
      Found = Out.Pass;
  EXPECT_TRUE(Found) << Rep.str();
}

TEST(CompositeRoundTrip, TextualVariantsShareOneFingerprint) {
  // Same subgraph, different whitespace / field order / attr order:
  // lowering canonicalizes, so the cache fingerprints collide.
  std::string A = readFile(dataPath("transpose_fold.json"));
  std::string B =
      R"({"platform": "AKG", "output_desc": [{"data_type": "float16",
            "shape": [24, 16], "tensor_name": "z"}],
          "op_desc": [
            {"output_desc": [{"tensor_name": "t0", "shape": [24, 16], "data_type": "float16"}],
             "input_desc": [[{"tensor_name": "x", "shape": [16, 24], "data_type": "float16"}]],
             "attr": [{"name": "perm", "value": [1, 0]}], "name": "Transpose"},
            {"name": "Add", "attr": null,
             "input_desc": [[{"tensor_name": "t0", "shape": [24, 16], "data_type": "float16"}],
                            [{"tensor_name": "y0", "shape": [24, 16], "data_type": "float16"}]],
             "output_desc": [{"tensor_name": "z", "shape": [24, 16], "data_type": "float16"}]}],
          "input_desc": [
            {"tensor_name": "x", "shape": [16, 24], "data_type": "float16"},
            {"tensor_name": "y0", "shape": [24, 16], "data_type": "float16"}],
          "op": "Fused_Transpose_Add", "composite": true})";
  FrontendResult FA = loadComposite(A), FB = loadComposite(B);
  ASSERT_TRUE(FA.ok()) << FA.Outcome.str();
  ASSERT_TRUE(FB.ok()) << FB.Outcome.str();
  EXPECT_EQ(serializeComposite(FA.Normalized), serializeComposite(FB.Normalized));
  EXPECT_TRUE(makeCacheKey(*FA.Mod, AkgOptions{}) ==
              makeCacheKey(*FB.Mod, AkgOptions{}));
}

//===----------------------------------------------------------------------===//
// Serving-layer ingress: CompileService::submitJson
//===----------------------------------------------------------------------===//

TEST(CompositeService, SubmitJsonCompilesAndCaches) {
  KernelCache Cache;
  CompileService::Options O;
  O.Threads = 2;
  O.Cache = &Cache;
  CompileService Svc(O);
  std::string Payload = readFile(dataPath("fused_cast_biasadd_gelu.json"));

  CompileResult R1 = Svc.submitJson(Payload, AkgOptions{}).get();
  ASSERT_TRUE(R1.Outcome.isOk()) << R1.Outcome.str();
  EXPECT_FALSE(R1.Trace.CacheHit);

  // Identical payload: second request is a cache hit with identical text.
  CompileResult R2 = Svc.submitJson(Payload, AkgOptions{}).get();
  ASSERT_TRUE(R2.Outcome.isOk());
  EXPECT_TRUE(R2.Trace.CacheHit);
  EXPECT_EQ(cce::printKernel(R1.Kernel), cce::printKernel(R2.Kernel));

  // A textual variant (re-serialized canonical form) also hits.
  FrontendResult F = loadComposite(Payload);
  ASSERT_TRUE(F.ok());
  CompileResult R3 =
      Svc.submitJson(serializeComposite(F.Normalized), AkgOptions{}).get();
  ASSERT_TRUE(R3.Outcome.isOk());
  EXPECT_TRUE(R3.Trace.CacheHit);
  EXPECT_EQ(Svc.stats().Submitted, 3);
}

TEST(CompositeService, SubmitJsonRejectsBadPayloadWithReadyFuture) {
  CompileService Svc;
  std::future<CompileResult> Fut =
      Svc.submitJson("{\"composite\": tru", AkgOptions{});
  ASSERT_EQ(Fut.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  CompileResult R = Fut.get();
  EXPECT_FALSE(R.Outcome.isOk());
  EXPECT_EQ(R.Outcome.code(), ErrCode::InvalidArgument) << R.Outcome.str();
  EXPECT_NE(R.Outcome.str().find("malformed JSON"), std::string::npos)
      << R.Outcome.str();
  EXPECT_EQ(Svc.stats().Submitted, 1);
}

TEST(CompositeService, SubmitJsonRejectsTopLevelArray) {
  CompileService Svc;
  std::future<CompileResult> Fut = Svc.submitJson(
      "  [" + readFile(dataPath("fused_cast_biasadd_gelu.json")) + "]",
      AkgOptions{});
  ASSERT_EQ(Fut.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  CompileResult R = Fut.get();
  EXPECT_EQ(R.Outcome.code(), ErrCode::InvalidArgument) << R.Outcome.str();
  EXPECT_NE(R.Outcome.str().find("submitJsonBatch"), std::string::npos)
      << R.Outcome.str();
}

TEST(CompositeService, SubmitJsonBatchFansOutPerEntry) {
  KernelCache Cache;
  CompileService::Options O;
  O.Threads = 2;
  O.Cache = &Cache;
  CompileService Svc(O);
  std::string Payload = readFile(dataPath("fused_cast_biasadd_gelu.json"));
  // Two good entries (structurally identical: the second coalesces onto
  // the first in the cache), one non-object entry, one schema-invalid
  // entry. Each gets its own future; the bad ones fail independently.
  std::string Batch =
      "[" + Payload + ", " + Payload + ", 42, {\"op\": 7}]";
  std::vector<std::future<CompileResult>> Futs =
      Svc.submitJsonBatch(Batch, AkgOptions{});
  ASSERT_EQ(Futs.size(), 4u);
  CompileResult R0 = Futs[0].get(), R1 = Futs[1].get(), R2 = Futs[2].get(),
                R3 = Futs[3].get();
  ASSERT_TRUE(R0.Outcome.isOk()) << R0.Outcome.str();
  ASSERT_TRUE(R1.Outcome.isOk()) << R1.Outcome.str();
  EXPECT_EQ(cce::printKernel(R0.Kernel), cce::printKernel(R1.Kernel));
  KernelCacheStats CS = Cache.stats();
  EXPECT_EQ(CS.Misses, 1);
  EXPECT_EQ(CS.Hits + CS.Coalesced, 1);
  EXPECT_EQ(R2.Outcome.code(), ErrCode::InvalidArgument) << R2.Outcome.str();
  EXPECT_EQ(R3.Outcome.code(), ErrCode::InvalidArgument) << R3.Outcome.str();
  EXPECT_NE(R2.Outcome.str().find("must be an object"), std::string::npos);
}

TEST(CompositeService, SubmitJsonBatchNonArrayIsBatchOfOne) {
  KernelCache Cache;
  CompileService::Options O;
  O.Cache = &Cache;
  CompileService Svc(O);
  std::vector<std::future<CompileResult>> Futs = Svc.submitJsonBatch(
      readFile(dataPath("fused_cast_biasadd_gelu.json")), AkgOptions{});
  ASSERT_EQ(Futs.size(), 1u);
  EXPECT_TRUE(Futs[0].get().Outcome.isOk());
  // An empty batch is zero futures, not an error.
  EXPECT_TRUE(Svc.submitJsonBatch("[]", AkgOptions{}).empty());
}

TEST(CompositeService, SubmitJsonBatchCapsEntryCount) {
  CompileService Svc;
  std::string Batch = "[";
  for (size_t I = 0; I <= kMaxBatchEntries; ++I)
    Batch += (I ? ",1" : "1");
  Batch += "]";
  std::vector<std::future<CompileResult>> Futs =
      Svc.submitJsonBatch(Batch, AkgOptions{});
  ASSERT_EQ(Futs.size(), 1u);
  CompileResult R = Futs[0].get();
  EXPECT_EQ(R.Outcome.code(), ErrCode::InvalidArgument) << R.Outcome.str();
  EXPECT_NE(R.Outcome.str().find("batch has"), std::string::npos)
      << R.Outcome.str();
}

//===----------------------------------------------------------------------===//
// Lowering specifics
//===----------------------------------------------------------------------===//

TEST(CompositeLower, SplitReshapeCompiles) {
  // [128] -> [8,16] splits a dimension: affine, lowerable directly.
  FrontendResult F = loadComposite(
      R"({"composite": true, "op": "split", "platform": "AKG",
          "input_desc": [{"tensor_name": "x", "shape": [128], "data_type": "float16"}],
          "op_desc": [
            {"name": "Reshape", "attr": [{"name": "shape", "value": [8, 16]}],
             "input_desc": [[{"tensor_name": "x", "shape": [128], "data_type": "float16"}]],
             "output_desc": [{"tensor_name": "t", "shape": [8, 16], "data_type": "float16"}]},
            {"name": "Abs", "attr": null,
             "input_desc": [[{"tensor_name": "t", "shape": [8, 16], "data_type": "float16"}]],
             "output_desc": [{"tensor_name": "y", "shape": [8, 16], "data_type": "float16"}]}],
          "output_desc": [{"tensor_name": "y", "shape": [8, 16], "data_type": "float16"}]})");
  ASSERT_TRUE(F.ok()) << F.Outcome.str();
  CompileResult R = compileWithAkg(*F.Mod, AkgOptions{}, F.KernelName);
  EXPECT_TRUE(R.Outcome.isOk()) << R.Outcome.str();
}

TEST(CompositeLower, ScalarOperandAndBroadcast) {
  FrontendResult F = loadComposite(
      R"({"composite": true, "op": "scl", "platform": "AKG",
          "input_desc": [
            {"tensor_name": "x", "shape": [4, 8], "data_type": "float16"},
            {"tensor_name": "r", "shape": [8], "data_type": "float16"}],
          "op_desc": [
            {"name": "Mul", "attr": null,
             "input_desc": [[{"tensor_name": "x", "shape": [4, 8], "data_type": "float16"}],
                            [{"value": 0.5, "data_type": "float16"}]],
             "output_desc": [{"tensor_name": "h", "shape": [4, 8], "data_type": "float16"}]},
            {"name": "Add", "attr": null,
             "input_desc": [[{"tensor_name": "h", "shape": [4, 8], "data_type": "float16"}],
                            [{"tensor_name": "r", "shape": [8], "data_type": "float16"}]],
             "output_desc": [{"tensor_name": "y", "shape": [4, 8], "data_type": "float16"}]}],
          "output_desc": [{"tensor_name": "y", "shape": [4, 8], "data_type": "float16"}]})");
  ASSERT_TRUE(F.ok()) << F.Outcome.str();
  CompileResult R = compileWithAkg(*F.Mod, AkgOptions{}, F.KernelName);
  EXPECT_TRUE(R.Outcome.isOk()) << R.Outcome.str();
}

TEST(CompositeLower, MatMulAndReduceLower) {
  FrontendResult F = loadComposite(
      R"({"composite": true, "op": "mm", "platform": "AKG",
          "input_desc": [
            {"tensor_name": "a", "shape": [32, 48], "data_type": "float16"},
            {"tensor_name": "b", "shape": [48, 16], "data_type": "float16"}],
          "op_desc": [
            {"name": "MatMul", "attr": null,
             "input_desc": [[{"tensor_name": "a", "shape": [32, 48], "data_type": "float16"}],
                            [{"tensor_name": "b", "shape": [48, 16], "data_type": "float16"}]],
             "output_desc": [{"tensor_name": "c", "shape": [32, 16], "data_type": "float32"}]},
            {"name": "ReduceSum",
             "attr": [{"name": "axis", "value": [1]}, {"name": "keep_dims", "value": true}],
             "input_desc": [[{"tensor_name": "c", "shape": [32, 16], "data_type": "float32"}]],
             "output_desc": [{"tensor_name": "y", "shape": [32, 1], "data_type": "float32"}]}],
          "output_desc": [{"tensor_name": "y", "shape": [32, 1], "data_type": "float32"}]})");
  ASSERT_TRUE(F.ok()) << F.Outcome.str();
  CompileResult R = compileWithAkg(*F.Mod, AkgOptions{}, F.KernelName);
  EXPECT_TRUE(R.Outcome.isOk()) << R.Outcome.str();
}

} // namespace
