//===- tests/DegradationTest.cpp - Fault injection + fallback ladder ------===//
//
// Forces each pipeline stage to fail (AkgOptions::FailStage and the
// AKG_FAIL_STAGE environment override) and checks the graded-degradation
// contract: the compile never aborts or leaks an exception, the
// DegradationReport names the failed stage, and the emitted kernel still
// computes the right answer. Also covers the tile-halving convergence
// ladder, the recoverable Rational overflow, and the ILP node budget.
//
//===----------------------------------------------------------------------===//

#include "akg/Compiler.h"
#include "graph/Ops.h"
#include "poly/Lp.h"
#include "support/Env.h"
#include "support/Rational.h"

#include <cstdlib>
#include <gtest/gtest.h>
#include <memory>

using namespace akg;
using namespace akg::ir;

namespace {

const sim::MachineSpec &machine() { return sim::MachineSpec::ascend910(); }

/// A two-op F32 elementwise chain: exercises fusion, vectorization and
/// double buffering while keeping reference comparison exact (identical
/// float operations in identical order on both sides).
std::shared_ptr<Module> makeChain() {
  auto M = std::make_shared<Module>();
  Tensor A = M->placeholder("A", {8, 32}, DType::F32);
  Tensor B = M->placeholder("B", {8, 32}, DType::F32);
  Tensor T = M->compute(
      "t", {8, 32},
      [&](const std::vector<Expr> &I) {
        return add(tensorRead(A, I), tensorRead(B, I));
      },
      DType::F32);
  M->compute(
      "out", {8, 32},
      [&](const std::vector<Expr> &I) {
        return mul(tensorRead(T, I), tensorRead(A, I));
      },
      DType::F32);
  return M;
}

TEST(Degradation, EveryStageFailsSafe) {
  const Stage Stages[] = {Stage::Scheduler,   Stage::Tiling,
                          Stage::Fusion,      Stage::IntraTile,
                          Stage::Storage,     Stage::Vectorize,
                          Stage::DoubleBuffer, Stage::Sync};
  auto M = makeChain();
  for (Stage S : Stages) {
    AkgOptions O;
    O.FailStage = S;
    CompileResult R = compileWithAkg(*M, O, std::string("inject_") +
                                                stageName(S));
    EXPECT_TRUE(R.Degradation.degraded()) << stageName(S);
    EXPECT_TRUE(R.Degradation.hasStage(S))
        << stageName(S) << " missing from:\n"
        << R.Degradation.str();
    EXPECT_LT(verifyKernel(R.Kernel, *M, machine()), 1e-5) << stageName(S);
  }
}

TEST(Degradation, CleanCompileReportsNothing) {
  auto M = makeChain();
  CompileResult R = compileWithAkg(*M, AkgOptions{}, "clean");
  EXPECT_FALSE(R.Degradation.degraded()) << R.Degradation.str();
  EXPECT_LT(verifyKernel(R.Kernel, *M, machine()), 1e-5);
}

TEST(Degradation, InjectedCubePipelineStaysCorrect) {
  auto M = graph::makeMatmul(32, 32, 32, DType::F32);
  for (Stage S : {Stage::Scheduler, Stage::Vectorize}) {
    AkgOptions O;
    O.FailStage = S;
    CompileResult R = compileWithAkg(*M, O, "inject_matmul");
    EXPECT_TRUE(R.Degradation.hasStage(S)) << stageName(S);
    EXPECT_LT(verifyKernel(R.Kernel, *M, machine()), 1e-5) << stageName(S);
  }
}

TEST(Degradation, EnvVarOverridesFailStage) {
  auto M = makeChain();
  env::set("AKG_FAIL_STAGE", "double_buffer");
  CompileResult R = compileWithAkg(*M, AkgOptions{}, "env_inject");
  env::unset("AKG_FAIL_STAGE");
  EXPECT_TRUE(R.Degradation.hasStage(Stage::DoubleBuffer))
      << R.Degradation.str();
  EXPECT_LT(verifyKernel(R.Kernel, *M, machine()), 1e-5);
  // Dashes are accepted too, and unknown names are ignored.
  EXPECT_EQ(parseStage("double-buffer"), Stage::DoubleBuffer);
  EXPECT_EQ(parseStage("no_such_stage"), Stage::None);
}

TEST(Degradation, TileHalvingConverges) {
  // One wide F32 row: the full-extent manual tile cannot fit in UB, so the
  // driver must walk the halving ladder down to a feasible size and record
  // the storage degradation.
  auto M = graph::makeTensorAdd({64, 8192});
  transforms::TilingPolicy TP;
  transforms::StmtTileSpec Spec;
  Spec.Entries.push_back(transforms::TileSpecEntry{64, "UB"});
  Spec.Entries.push_back(transforms::TileSpecEntry{8192, "UB"});
  TP.PerStmt[0] = Spec;

  AkgOptions O;
  O.ManualTiles = TP;
  CompileResult R = compileWithAkg(*M, O, "halving");
  EXPECT_TRUE(R.Degradation.hasStage(Stage::Storage))
      << R.Degradation.str();
  ASSERT_FALSE(R.TileSizes.empty());
  int64_t TileElems = 1;
  for (int64_t S : R.TileSizes)
    TileElems *= S;
  EXPECT_LT(TileElems, 64 * 8192); // actually halved something
  EXPECT_LT(verifyKernel(R.Kernel, *M, machine()), 1e-5);
}

TEST(Degradation, RetryBudgetExhaustionFallsBackToScalar) {
  auto M = graph::makeTensorAdd({64, 8192});
  transforms::TilingPolicy TP;
  transforms::StmtTileSpec Spec;
  Spec.Entries.push_back(transforms::TileSpecEntry{64, "UB"});
  Spec.Entries.push_back(transforms::TileSpecEntry{8192, "UB"});
  TP.PerStmt[0] = Spec;

  AkgOptions O;
  O.ManualTiles = TP;
  O.MaxTileRetries = 0; // no halving allowed
  CompileResult R = compileWithAkg(*M, O, "no_retries");
  EXPECT_TRUE(R.Degradation.hasStage(Stage::Storage))
      << R.Degradation.str();
  EXPECT_TRUE(R.TileSizes.empty()); // scalar fallback carries no tiling
  EXPECT_LT(verifyKernel(R.Kernel, *M, machine()), 1e-5);
}

TEST(Degradation, ExpiredDeadlineStillCompiles) {
  auto M = makeChain();
  AkgOptions O;
  O.Budget.DeadlineSeconds = 1e-9; // expires immediately
  CompileResult R = compileWithAkg(*M, O, "deadline");
  EXPECT_TRUE(R.Degradation.degraded()) << "deadline ignored";
  EXPECT_LT(verifyKernel(R.Kernel, *M, machine()), 1e-5);
}

TEST(Degradation, RationalOverflowIsRecoverable) {
  EXPECT_THROW(Rational(Int128(1) << 101, 1), RationalOverflow);
  EXPECT_THROW(Rational(1, Int128(1) << 101), RationalOverflow);
  EXPECT_NO_THROW(Rational(Int128(1) << 99, 3));
  // The solver absorbs the throw and reports the problem as too hard
  // rather than crashing; a plain in-range problem is unaffected.
  Rational R(6, 4);
  EXPECT_EQ(R.num(), 3);
  EXPECT_EQ(R.den(), 2);
}

TEST(Degradation, IlpNodeBudgetReportsTooHard) {
  // 1/3 <= x <= 2/3 has no integer point; proving it requires branching,
  // which a one-node budget forbids.
  LpProblem P;
  P.NumVars = 1;
  P.addIneq({Rational(3)}, Rational(-1)); // 3x - 1 >= 0
  P.addIneq({Rational(-3)}, Rational(2)); // -3x + 2 >= 0
  IlpOptions Tight;
  Tight.NodeLimit = 1;
  LpResult R = ilpMinimize(P, {Rational(1)}, Tight);
  EXPECT_EQ(R.Status, LpStatus::TooHard);
  // With the default budget the emptiness proof completes.
  LpResult Full = ilpMinimize(P, {Rational(1)});
  EXPECT_EQ(Full.Status, LpStatus::Infeasible);
}

} // namespace
