//===- tests/DynShapeTest.cpp - Dynamic shapes + bucketed reuse -----------===//
//
// The dynamic-shape contract (DESIGN.md 4k): bucket-boundary edges,
// admission/fallback of the pointwise-in-dynamic-axes analysis, the
// parametric dependence probe, skeleton rebinding, bucketed cache keys,
// late-bound execution matching a fresh per-shape compile, the
// AKG_DYNSHAPE kill switch, and determinism of concurrent bound requests.
//
//===----------------------------------------------------------------------===//

#include "akg/DynShape.h"
#include "akg/KernelCache.h"
#include "akg/ShapeBuckets.h"
#include "ir/ModuleUtils.h"
#include "ir/SymbolicShape.h"
#include "scheduler/ShapeDep.h"
#include "sim/DynRun.h"
#include "support/Env.h"

#include <gtest/gtest.h>
#include <memory>
#include <thread>

using namespace akg;
using namespace akg::ir;

namespace {

constexpr double kTol = 2e-2;

/// relu(a + b) over [N, C] with dim 0 dynamic under symbol "n".
std::shared_ptr<Module> makeDynEltwise(int64_t N, int64_t C = 32) {
  auto M = std::make_shared<Module>();
  Tensor A = M->placeholder("a", {N, C}, DType::F32);
  Tensor B = M->placeholder("b", {N, C}, DType::F32);
  M->compute(
      "out", {N, C},
      [&](const std::vector<Expr> &I) {
        return call("relu", {add(tensorRead(A, I), tensorRead(B, I))},
                    DType::F32);
      },
      DType::F32);
  M->markDynamicDim(A, 0, "n");
  M->markDynamicDim(B, 0, "n");
  return M;
}

/// Row-sum over the static axis: out[i] = sum_c a[i, c], dim 0 dynamic.
std::shared_ptr<Module> makeDynRowSum(int64_t N, int64_t C = 24) {
  auto M = std::make_shared<Module>();
  Tensor A = M->placeholder("a", {N, C}, DType::F32);
  IterVar K = M->reduceAxis(C, "c");
  M->compute(
      "row", {N},
      [&](const std::vector<Expr> &I) {
        return reduce(ReduceKind::Sum, tensorRead(A, {I[0], var("c")}), {K});
      },
      DType::F32);
  M->markDynamicDim(A, 0, "n");
  return M;
}

/// GEMM with dynamic M: C[i,j] = sum_k A[i,k] * B[k,j].
std::shared_ptr<Module> makeDynGemm(int64_t Rows, int64_t K = 16,
                                    int64_t Cols = 16) {
  auto M = std::make_shared<Module>();
  Tensor A = M->placeholder("a", {Rows, K}, DType::F16);
  Tensor B = M->placeholder("b", {K, Cols}, DType::F16);
  IterVar KV = M->reduceAxis(K, "k");
  M->compute(
      "c", {Rows, Cols},
      [&](const std::vector<Expr> &I) {
        return reduce(ReduceKind::Sum,
                      mul(tensorRead(A, {I[0], var("k")}),
                          tensorRead(B, {var("k"), I[1]})),
                      {KV});
      },
      DType::F16);
  M->markDynamicDim(A, 0, "m");
  return M;
}

} // namespace

//===----------------------------------------------------------------------===//
// Bucket scheme
//===----------------------------------------------------------------------===//

TEST(ShapeBuckets, DefaultBoundsAndEdges) {
  BucketScheme S;
  ASSERT_EQ(S.bounds().size(), 5u);
  // Extent exactly at a bucket limit stays in that bucket.
  auto B16 = S.bucketFor(16);
  ASSERT_TRUE(B16.has_value());
  EXPECT_EQ(B16->Lo, 1);
  EXPECT_EQ(B16->Hi, 16);
  EXPECT_EQ(B16->representative(), 16);
  // One past the limit lands in the next bucket.
  auto B17 = S.bucketFor(17);
  ASSERT_TRUE(B17.has_value());
  EXPECT_EQ(B17->Lo, 17);
  EXPECT_EQ(B17->Hi, 64);
  // Extent 1 is valid and shares the first bucket.
  EXPECT_EQ(S.bucketFor(1)->Hi, 16);
  // Max-range extent is in the last bucket; beyond it: no bucket.
  EXPECT_EQ(S.bucketFor(4096)->Hi, 4096);
  EXPECT_FALSE(S.bucketFor(4097).has_value());
  EXPECT_FALSE(S.bucketFor(0).has_value());
  EXPECT_EQ(BucketScheme::bucketId(*B17), "b64");
}

TEST(ShapeBuckets, EnvOverrideAndMalformedFallsBack) {
  env::set("AKG_SHAPE_BUCKETS", "8,32");
  BucketScheme S = BucketScheme::fromEnv();
  ASSERT_EQ(S.bounds().size(), 2u);
  EXPECT_EQ(S.bucketFor(9)->Hi, 32);
  EXPECT_FALSE(S.bucketFor(33).has_value());
  // Non-increasing and garbage inputs fall back to the defaults.
  env::set("AKG_SHAPE_BUCKETS", "32,8");
  EXPECT_EQ(BucketScheme::fromEnv().bounds().size(), 5u);
  env::set("AKG_SHAPE_BUCKETS", "16,potato");
  EXPECT_EQ(BucketScheme::fromEnv().bounds().size(), 5u);
  env::unset("AKG_SHAPE_BUCKETS");
}

//===----------------------------------------------------------------------===//
// Structural analysis + rebinding
//===----------------------------------------------------------------------===//

TEST(SymbolicShape, PropagatesMarksThroughSupportedOps) {
  auto M = makeDynEltwise(40);
  DynShapeAnalysis A = analyzeDynamicShapes(*M);
  ASSERT_TRUE(A.Supported) << A.Reason;
  EXPECT_EQ(A.Bound.at("n"), 40);
  // The op output inherited the mark on its dynamic axis only.
  Tensor Out = M->outputs().at(0);
  EXPECT_EQ(Out->symOf(0), "n");
  EXPECT_EQ(Out->symOf(1), "");
}

TEST(SymbolicShape, GemmWithDynamicRowsIsSupported) {
  auto M = makeDynGemm(100);
  DynShapeAnalysis A = analyzeDynamicShapes(*M);
  ASSERT_TRUE(A.Supported) << A.Reason;
  EXPECT_EQ(M->outputs().at(0)->symOf(0), "m");
}

TEST(SymbolicShape, DynamicReduceAxisRejected) {
  // sum over the DYNAMIC axis: zero padding would not change the sum here,
  // but the class must reject it (exp/min reductions would be wrong).
  auto M = std::make_shared<Module>();
  Tensor A = M->placeholder("a", {32, 8}, DType::F32);
  IterVar K = M->reduceAxis(32, "k");
  M->compute(
      "col", {8},
      [&](const std::vector<Expr> &I) {
        return reduce(ReduceKind::Sum, tensorRead(A, {var("k"), I[0]}), {K});
      },
      DType::F32);
  M->markDynamicDim(A, 0, "n");
  DynShapeAnalysis R = analyzeDynamicShapes(*M);
  EXPECT_FALSE(R.Supported);
  EXPECT_NE(R.Reason.find("non-output axis"), std::string::npos) << R.Reason;
}

TEST(SymbolicShape, NonIdentityIndexingRejected) {
  // Shifted read a[i+1] on the dynamic axis: not pointwise.
  auto M = std::make_shared<Module>();
  Tensor A = M->placeholder("a", {33}, DType::F32);
  M->compute(
      "shift", {32},
      [&](const std::vector<Expr> &I) {
        return tensorRead(A, {add(I[0], intImm(1))});
      },
      DType::F32);
  M->markDynamicDim(A, 0, "n");
  EXPECT_FALSE(analyzeDynamicShapes(*M).Supported);
}

TEST(SymbolicShape, DynamicAxisInValuePositionRejected) {
  // select(i < 5, ...) uses the dynamic axis var as a value: the padded
  // region would change results, so admission must refuse.
  auto M = std::make_shared<Module>();
  Tensor A = M->placeholder("a", {32}, DType::F32);
  M->compute(
      "sel", {32},
      [&](const std::vector<Expr> &I) {
        return select(cmp(ExprKind::CmpLT, I[0], intImm(5)),
                      tensorRead(A, I), floatImm(0.0));
      },
      DType::F32);
  M->markDynamicDim(A, 0, "n");
  DynShapeAnalysis R = analyzeDynamicShapes(*M);
  EXPECT_FALSE(R.Supported);
  EXPECT_NE(R.Reason.find("outside identity indexing"), std::string::npos)
      << R.Reason;
}

TEST(SymbolicShape, InconsistentBindingRejected) {
  auto M = std::make_shared<Module>();
  Tensor A = M->placeholder("a", {32, 8}, DType::F32);
  Tensor B = M->placeholder("b", {40, 8}, DType::F32);
  M->compute(
      "oa", {32, 8},
      [&](const std::vector<Expr> &I) { return tensorRead(A, I); },
      DType::F32);
  M->markDynamicDim(A, 0, "n");
  M->markDynamicDim(B, 0, "n"); // same symbol, different extent
  EXPECT_FALSE(analyzeDynamicShapes(*M).Supported);
}

TEST(SymbolicShape, OutOfDeclaredRangeRejected) {
  auto M = std::make_shared<Module>();
  Tensor A = M->placeholder("a", {100}, DType::F32);
  M->compute(
      "o", {100},
      [&](const std::vector<Expr> &I) { return tensorRead(A, I); },
      DType::F32);
  M->markDynamicDim(A, 0, "n", /*Min=*/1, /*Max=*/64);
  EXPECT_FALSE(analyzeDynamicShapes(*M).Supported);
}

TEST(SymbolicShape, RebindMovesEveryBoundExtent) {
  auto M = makeDynEltwise(40);
  ASSERT_TRUE(analyzeDynamicShapes(*M).Supported);
  Module R = rebindShapes(*M, {{"n", 64}});
  EXPECT_EQ(R.inputs()[0]->Shape[0], 64);
  EXPECT_EQ(R.inputs()[1]->Shape[0], 64);
  EXPECT_EQ(R.outputs()[0]->Shape[0], 64);
  EXPECT_EQ(R.outputs()[0]->symOf(0), "n"); // marks survive
  EXPECT_EQ(checkModuleBounds(R), "");
  // The rebound skeleton is a well-formed concrete module: it evaluates.
  BufferMap Out = evaluateModule(R, sim::makeModuleInputs(R, 7));
  EXPECT_EQ(Out.at("out").size(), 64u * 32u);
}

TEST(SymbolicShape, CloneKeepsSymbolRegistryAndMarks) {
  auto M = makeDynEltwise(20);
  Module C = cloneModule(*M);
  EXPECT_TRUE(hasDynamicDims(C));
  EXPECT_EQ(C.shapeSymbols().at("n").Max, 4096);
  EXPECT_EQ(C.inputs()[0]->symOf(0), "n");
}

//===----------------------------------------------------------------------===//
// Parametric dependence probe
//===----------------------------------------------------------------------===//

TEST(ShapeDep, SupportedClassIsInvariantAcrossBucket) {
  auto M = makeDynRowSum(40);
  ASSERT_TRUE(analyzeDynamicShapes(*M).Supported);
  std::map<std::string, SymExtentRange> R{{"n", {17, 64}}};
  EXPECT_EQ(sched::probeShapeDependence(*M, R), "");
}

TEST(ShapeDep, ParametricDomainsCarryParamColumns) {
  auto M = makeDynEltwise(40);
  ASSERT_TRUE(analyzeDynamicShapes(*M).Supported);
  ir::PolyProgram P =
      extractPolyProgramParametric(*M, {{"n", {17, 64}}});
  ASSERT_FALSE(P.Stmts.empty());
  const poly::BasicSet &D = P.Stmts[0].Domain;
  ASSERT_EQ(D.space().numParams(), 1u);
  EXPECT_EQ(D.space().Params[0], "n");
  // Fixing the parameter pins the dynamic dim's max.
  poly::BasicSet Fixed = D;
  Fixed.fixParam(0, 40);
  EXPECT_EQ(Fixed.maxOfCol(Fixed.inCol(0)).value_or(-1), 39);
  EXPECT_FALSE(Fixed.isEmpty());
}

//===----------------------------------------------------------------------===//
// Admission planning + bucketed cache
//===----------------------------------------------------------------------===//

TEST(DynShapePlan, AdmitsAndCanonicalizesToBucketTop) {
  auto M = makeDynEltwise(40);
  dynshape::Plan P = dynshape::plan(*M, BucketScheme());
  ASSERT_TRUE(P.Usable) << P.FallbackReason;
  EXPECT_EQ(P.Skeleton->inputs()[0]->Shape[0], 64); // rep of (16,64]
  EXPECT_EQ(P.Binding->Concrete.at("n"), 40);
  EXPECT_EQ(P.Binding->Representative.at("n"), 64);
  EXPECT_NE(P.BucketKey.find("n=b64"), std::string::npos) << P.BucketKey;
  // Both input tensors and the derived output are recorded for pad/slice.
  EXPECT_TRUE(P.Binding->TensorSyms.count("a"));
  EXPECT_TRUE(P.Binding->TensorSyms.count("out"));
}

TEST(DynShapePlan, BeyondLastBucketFallsBack) {
  auto M = makeDynEltwise(50, 8);
  M->declareShapeSymbol("n", 1, 100000); // widen the declared range
  auto Big = std::make_shared<Module>();
  Tensor A = Big->placeholder("a", {5000, 8}, DType::F32);
  Big->compute(
      "o", {5000, 8},
      [&](const std::vector<Expr> &I) { return tensorRead(A, I); },
      DType::F32);
  Big->markDynamicDim(A, 0, "n", 1, 100000);
  dynshape::Plan P = dynshape::plan(*Big, BucketScheme());
  EXPECT_FALSE(P.Usable);
  EXPECT_NE(P.FallbackReason.find("beyond the last bucket"),
            std::string::npos);
}

TEST(DynShapePlan, BucketedKeyNeverAliasesPlainConcreteKey) {
  auto M = makeDynEltwise(40);
  dynshape::Plan P = dynshape::plan(*M, BucketScheme());
  ASSERT_TRUE(P.Usable);
  AkgOptions O;
  CacheKey Plain = makeCacheKey(*P.Skeleton, O);
  CacheKey Bucketed = makeBucketedCacheKey(*P.Skeleton, O, P.BucketKey);
  EXPECT_FALSE(Plain == Bucketed);
}

TEST(DynShapeCache, SameBucketSharesOneSkeletonCompile) {
  KernelCache C(64);
  AkgOptions O;
  auto M1 = makeDynEltwise(40);
  auto M2 = makeDynEltwise(63); // same bucket (16, 64]
  CompileResult R1 = C.compileOrGet(*M1, O, "k40");
  CompileResult R2 = C.compileOrGet(*M2, O, "k63");
  ASSERT_TRUE(R1.Outcome.isOk());
  ASSERT_TRUE(R2.Outcome.isOk());
  ASSERT_TRUE(R1.DynShape && R2.DynShape);
  EXPECT_EQ(R1.DynShape->Concrete.at("n"), 40);
  EXPECT_EQ(R2.DynShape->Concrete.at("n"), 63);
  KernelCacheStats S = C.stats();
  EXPECT_EQ(S.Misses, 1) << "second request must reuse the skeleton";
  EXPECT_EQ(S.Hits, 1);
  EXPECT_EQ(S.DynBinds, 2);
  EXPECT_EQ(C.size(), 1u);
  // The skeleton kernel advertises its late-bound extent registers.
  ASSERT_EQ(R1.Kernel.ExtentRegs.size(), 1u);
  EXPECT_EQ(R1.Kernel.ExtentRegs[0].Symbol, "n");
  EXPECT_EQ(R1.Kernel.ExtentRegs[0].Value, 64);
  EXPECT_NE(cce::printKernel(R1.Kernel).find(".extent_reg n = 64"),
            std::string::npos);
}

TEST(DynShapeCache, DifferentBucketsCompileSeparately) {
  KernelCache C(64);
  AkgOptions O;
  auto M1 = makeDynEltwise(10); // bucket [1,16]
  auto M2 = makeDynEltwise(40); // bucket (16,64]
  ASSERT_TRUE(C.compileOrGet(*M1, O, "k10").Outcome.isOk());
  ASSERT_TRUE(C.compileOrGet(*M2, O, "k40").Outcome.isOk());
  EXPECT_EQ(C.stats().Misses, 2);
  EXPECT_EQ(C.size(), 2u);
}

TEST(DynShapeCache, KillSwitchDisablesBucketing) {
  env::set("AKG_DYNSHAPE", "0");
  KernelCache C(64);
  AkgOptions O;
  auto M1 = makeDynEltwise(40);
  auto M2 = makeDynEltwise(63);
  CompileResult R1 = C.compileOrGet(*M1, O, "k40");
  CompileResult R2 = C.compileOrGet(*M2, O, "k63");
  env::unset("AKG_DYNSHAPE");
  ASSERT_TRUE(R1.Outcome.isOk());
  EXPECT_EQ(R1.DynShape, nullptr);
  EXPECT_EQ(R2.DynShape, nullptr);
  EXPECT_TRUE(R1.Kernel.ExtentRegs.empty());
  EXPECT_EQ(C.stats().Misses, 2) << "no bucket sharing with the switch off";
  EXPECT_EQ(C.stats().DynBinds, 0);
}

TEST(DynShapeCache, UnsupportedModuleFallsBackAndStillCompiles) {
  KernelCache C(64);
  AkgOptions O;
  auto M = std::make_shared<Module>();
  Tensor A = M->placeholder("a", {33}, DType::F32);
  M->compute(
      "shift", {32},
      [&](const std::vector<Expr> &I) {
        return tensorRead(A, {add(I[0], intImm(1))});
      },
      DType::F32);
  M->markDynamicDim(A, 0, "n");
  CompileResult R = C.compileOrGet(*M, O, "shifted");
  ASSERT_TRUE(R.Outcome.isOk());
  EXPECT_EQ(R.DynShape, nullptr);
  EXPECT_EQ(C.stats().DynFallbacks, 1);
  // Correctness never depends on bucketing: the fallback compile is exact.
  EXPECT_TRUE(sim::diffBoundAgainstReference(R, *M, O.Codegen.Machine)
                  .within(kTol));
}

//===----------------------------------------------------------------------===//
// Late-bound execution == fresh per-shape compile (the hard gate)
//===----------------------------------------------------------------------===//

namespace {

/// Compiles \p M bucketed (through a cache) and fresh (direct), then
/// requires both to match the reference evaluator on the concrete shape.
void expectBoundMatchesFresh(KernelCache &C, std::shared_ptr<Module> M,
                             const std::string &Name) {
  AkgOptions O;
  CompileResult Bound = C.compileOrGet(*M, O, Name);
  ASSERT_TRUE(Bound.Outcome.isOk());
  sim::FunctionalDiff BD =
      sim::diffBoundAgainstReference(Bound, *M, O.Codegen.Machine);
  EXPECT_TRUE(BD.within(kTol)) << Name << " bound: " << BD.str();
  CompileResult Fresh = compileWithAkg(*M, O, Name + "_fresh");
  ASSERT_TRUE(Fresh.Outcome.isOk());
  sim::FunctionalDiff FD =
      sim::diffBoundAgainstReference(Fresh, *M, O.Codegen.Machine);
  EXPECT_TRUE(FD.within(kTol)) << Name << " fresh: " << FD.str();
}

} // namespace

TEST(DynShapeBind, EltwiseMatchesFreshAcrossBucketEdges) {
  KernelCache C(64);
  for (int64_t N : {1, 15, 16, 17, 63, 64, 65}) {
    auto M = makeDynEltwise(N, 16);
    expectBoundMatchesFresh(C, M, "elt_n" + std::to_string(N));
  }
  // 1, 15, 16 share one skeleton; 17, 63, 64 share another; 65 a third.
  EXPECT_EQ(C.stats().Misses, 3);
  EXPECT_EQ(C.stats().DynBinds, 7);
}

TEST(DynShapeBind, RowSumMatchesFresh) {
  KernelCache C(64);
  for (int64_t N : {3, 16, 30}) {
    auto M = makeDynRowSum(N);
    expectBoundMatchesFresh(C, M, "rowsum_n" + std::to_string(N));
  }
}

TEST(DynShapeBind, GemmDynamicRowsMatchesFresh) {
  KernelCache C(64);
  for (int64_t Rows : {5, 16, 48}) {
    auto M = makeDynGemm(Rows);
    expectBoundMatchesFresh(C, M, "gemm_m" + std::to_string(Rows));
  }
}

TEST(DynShapeBind, ConcurrentBindsAreDeterministic) {
  // N threads bind different extents of one bucket concurrently; each
  // result must be bit-identical to a sequential bind of that extent.
  KernelCache C(64);
  AkgOptions O;
  const int64_t Extents[] = {20, 30, 40, 50};
  uint64_t SeqBits[4];
  for (unsigned I = 0; I < 4; ++I) {
    auto M = makeDynEltwise(Extents[I], 8);
    CompileResult R = C.compileOrGet(*M, O, "seq");
    ASSERT_TRUE(R.Outcome.isOk());
    sim::diffBoundAgainstReference(R, *M, O.Codegen.Machine, 1, nullptr,
                                   &SeqBits[I]);
  }
  uint64_t ParBits[4] = {0, 0, 0, 0};
  std::vector<std::thread> Ts;
  for (unsigned I = 0; I < 4; ++I)
    Ts.emplace_back([&, I] {
      auto M = makeDynEltwise(Extents[I], 8);
      CompileResult R = C.compileOrGet(*M, O, "par");
      ASSERT_TRUE(R.Outcome.isOk());
      sim::diffBoundAgainstReference(R, *M, O.Codegen.Machine, 1, nullptr,
                                     &ParBits[I]);
    });
  for (std::thread &T : Ts)
    T.join();
  for (unsigned I = 0; I < 4; ++I)
    EXPECT_EQ(SeqBits[I], ParBits[I]) << "extent " << Extents[I];
}
