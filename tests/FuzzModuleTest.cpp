//===- tests/FuzzModuleTest.cpp - Randomized module compilation -----------===//
//
// Seeded random DSL modules from the verify::Generator (DESIGN.md 4e)
// pushed through the full AKG pipeline and the TVM baseline; every
// kernel's functional simulation must match the reference evaluator.
// The fixed seed range cycles through all generator themes, so tier-1
// always exercises matmul, conv (img2col + padding), 3-D reductions,
// rank-4 broadcasts and multi-output subgraphs — not just elementwise
// chains. The wide sweep (hundreds of seeds x the full config matrix)
// lives in tools/akg-fuzz; this is the fast in-tree slice of it.
//
//===----------------------------------------------------------------------===//

#include "akg/Compiler.h"
#include "baselines/TvmCompiler.h"
#include "verify/Generator.h"

#include <gtest/gtest.h>

using namespace akg;
using namespace akg::ir;

namespace {

class FuzzModules : public ::testing::TestWithParam<int> {};

TEST_P(FuzzModules, AkgPipelineMatchesReference) {
  Module M = verify::generateModule(GetParam());
  CompileResult R = compileWithAkg(M, AkgOptions{}, "fuzz_akg");
  EXPECT_TRUE(
      cce::checkBufferCapacities(R.Kernel, sim::MachineSpec::ascend910())
          .empty());
  double Err = verifyKernel(R.Kernel, M, sim::MachineSpec::ascend910());
  EXPECT_LT(Err, 2e-2) << verify::describeModule(GetParam(), M) << "\n"
                       << M.str();
}

TEST_P(FuzzModules, TvmBaselineMatchesReference) {
  Module M = verify::generateModule(GetParam() + 500);
  baselines::TvmOptions O;
  CompileResult R = baselines::compileWithTvm(M, O, "fuzz_tvm");
  double Err = verifyKernel(R.Kernel, M, sim::MachineSpec::ascend910());
  EXPECT_LT(Err, 2e-2) << verify::describeModule(GetParam() + 500, M) << "\n"
                       << M.str();
}

TEST_P(FuzzModules, NoFusionAblationMatchesReference) {
  Module M = verify::generateModule(GetParam() + 900);
  AkgOptions O;
  O.EnablePostTilingFusion = false;
  CompileResult R = compileWithAkg(M, O, "fuzz_nofuse");
  double Err = verifyKernel(R.Kernel, M, sim::MachineSpec::ascend910());
  EXPECT_LT(Err, 2e-2) << verify::describeModule(GetParam() + 900, M) << "\n"
                       << M.str();
}

// 21 consecutive seeds = every theme three times (the theme cycle has
// period 7; see verify::themeForSeed).
INSTANTIATE_TEST_SUITE_P(Seeds, FuzzModules, ::testing::Range(0, 21));

} // namespace
