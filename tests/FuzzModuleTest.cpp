//===- tests/FuzzModuleTest.cpp - Randomized module compilation -----------===//
//
// Seeded random DSL modules (elementwise DAGs with broadcasts, occasional
// reductions and shifted reads) pushed through the full AKG pipeline and
// the TVM baseline; every kernel's functional simulation must match the
// reference evaluator. This is the broad-spectrum safety net behind the
// targeted unit tests.
//
//===----------------------------------------------------------------------===//

#include "akg/Compiler.h"
#include "baselines/TvmCompiler.h"

#include <gtest/gtest.h>

using namespace akg;
using namespace akg::ir;

namespace {

struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed * 0x9E3779B97F4A7C15ull + 7) {}
  int64_t range(int64_t Lo, int64_t Hi) {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return Lo + int64_t(S % uint64_t(Hi - Lo + 1));
  }
  bool chance(int Pct) { return range(0, 99) < Pct; }
};

Module randomModule(uint64_t Seed) {
  Rng R(Seed);
  Module M;
  int64_t D0 = R.range(3, 24), D1 = R.range(4, 40);
  std::vector<int64_t> Shape = {D0, D1};
  std::vector<Tensor> Pool;
  Pool.push_back(M.placeholder("in0", Shape));
  Pool.push_back(M.placeholder("in1", Shape));
  Pool.push_back(M.placeholder("row", {D1})); // broadcast operand

  unsigned NumOps = static_cast<unsigned>(R.range(2, 7));
  for (unsigned I = 0; I < NumOps; ++I) {
    Tensor A = Pool[R.range(0, int64_t(Pool.size()) - 1)];
    std::string Name = "op" + std::to_string(I);
    int Kind = static_cast<int>(R.range(0, 5));
    Tensor Out;
    if (Kind == 0 && A->Shape == Shape) { // binary with a same-shape 2-D
      Tensor B;
      unsigned Guard = 0;
      do {
        B = Pool[R.range(0, int64_t(Pool.size()) - 1)];
      } while (B->Shape != Shape && ++Guard < 16);
      if (B->Shape != Shape)
        B = Pool[0];
      Out = M.compute(Name, Shape, [&](const std::vector<Expr> &Ix) {
        return R.chance(50) ? add(tensorRead(A, Ix), tensorRead(B, Ix))
                            : mul(tensorRead(A, Ix), tensorRead(B, Ix));
      });
    } else if (Kind == 1 && A->Shape == Shape) { // broadcast row
      Out = M.compute(Name, Shape, [&](const std::vector<Expr> &Ix) {
        return add(tensorRead(A, Ix),
                   tensorRead(Pool[2], {Ix[1]}));
      });
    } else if (Kind == 2 && A->Shape == Shape && D0 > 4) {
      // shifted read (halo) into a smaller output
      std::vector<int64_t> Sm = {D0 - 2, D1};
      Out = M.compute(Name, Sm, [&](const std::vector<Expr> &Ix) {
        return add(tensorRead(A, {Ix[0], Ix[1]}),
                   tensorRead(A, {add(Ix[0], intImm(2)), Ix[1]}));
      });
    } else if (Kind == 3 && A->Shape.size() == 2 && R.chance(40)) {
      // row reduction
      IterVar K = M.reduceAxis(A->Shape[1], Name + "_k");
      Out = M.compute(Name, {A->Shape[0]},
                      [&](const std::vector<Expr> &Ix) {
                        return reduce(ReduceKind::Sum,
                                      tensorRead(A, {Ix[0],
                                                     var(Name + "_k")}),
                                      {K});
                      }, DType::F32);
    } else { // unary intrinsic, any rank
      Out = M.compute(Name, A->Shape, [&](const std::vector<Expr> &Ix) {
        const char *Fns[] = {"relu", "abs", "sigmoid"};
        return call(Fns[R.range(0, 2)], {tensorRead(A, Ix)}, DType::F16);
      });
    }
    Pool.push_back(Out);
  }
  return M;
}

class FuzzModules : public ::testing::TestWithParam<int> {};

TEST_P(FuzzModules, AkgPipelineMatchesReference) {
  Module M = randomModule(GetParam());
  CompileResult R = compileWithAkg(M, AkgOptions{}, "fuzz_akg");
  EXPECT_TRUE(
      cce::checkBufferCapacities(R.Kernel, sim::MachineSpec::ascend910())
          .empty());
  double Err = verifyKernel(R.Kernel, M, sim::MachineSpec::ascend910());
  EXPECT_LT(Err, 2e-2) << M.str();
}

TEST_P(FuzzModules, TvmBaselineMatchesReference) {
  Module M = randomModule(GetParam() + 500);
  baselines::TvmOptions O;
  CompileResult R = baselines::compileWithTvm(M, O, "fuzz_tvm");
  double Err = verifyKernel(R.Kernel, M, sim::MachineSpec::ascend910());
  EXPECT_LT(Err, 2e-2) << M.str();
}

TEST_P(FuzzModules, NoFusionAblationMatchesReference) {
  Module M = randomModule(GetParam() + 900);
  AkgOptions O;
  O.EnablePostTilingFusion = false;
  CompileResult R = compileWithAkg(M, O, "fuzz_nofuse");
  double Err = verifyKernel(R.Kernel, M, sim::MachineSpec::ascend910());
  EXPECT_LT(Err, 2e-2) << M.str();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzModules, ::testing::Range(1, 11));

} // namespace
