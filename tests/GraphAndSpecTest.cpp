//===- tests/GraphAndSpecTest.cpp - Graph engine + spec language tests ----===//

#include "akg/Compiler.h"
#include "graph/Graph.h"
#include "graph/Networks.h"
#include "graph/Ops.h"
#include "transforms/MemHierSpec.h"

#include <gtest/gtest.h>

using namespace akg;
using namespace akg::graph;

namespace {

TEST(GraphEngine, PartitionGroupsElementwiseAroundAnchor) {
  CompGraph G;
  unsigned In = G.addInput("x", {4, 8, 10, 10});
  unsigned Conv = G.addConv(In, 8, 3, 3, 1, 1);
  unsigned R1 = G.addElementwise("relu", {Conv});
  unsigned R2 = G.addElementwise("abs", {R1});
  unsigned T = G.addElementwise("sigmoid", {R2});
  (void)T;
  auto Groups = G.partition();
  ASSERT_EQ(Groups.size(), 1u);
  EXPECT_TRUE(Groups[0].HasAnchor);
  EXPECT_EQ(Groups[0].Nodes.size(), 4u);
}

TEST(GraphEngine, EmittedModuleCompilesAndVerifies) {
  CompGraph G;
  unsigned In = G.addInput("x", {2, 4, 8, 8});
  unsigned Conv = G.addConv(In, 4, 3, 3, 1, 1);
  unsigned R1 = G.addElementwise("relu", {Conv});
  (void)R1;
  auto Groups = G.partition();
  ASSERT_EQ(Groups.size(), 1u);
  auto M = G.emitModule(Groups[0]);
  CompileResult R = compileWithAkg(*M, AkgOptions{}, "graph_group");
  double Err = verifyKernel(R.Kernel, *M, sim::MachineSpec::ascend910());
  EXPECT_LT(Err, 1e-2);
}

TEST(GraphEngine, MultiConsumerBreaksFusion) {
  CompGraph G;
  unsigned In = G.addInput("x", {16, 16});
  unsigned A = G.addElementwise("relu", {In});
  // Two consumers of A: it cannot be absorbed into either chain.
  G.addElementwise("abs", {A});
  G.addElementwise("sigmoid", {A});
  auto Groups = G.partition();
  EXPECT_EQ(Groups.size(), 3u);
}

TEST(Table1, SubgraphOpCountsMatchPaper) {
  EXPECT_EQ(opCount(*makeSubgraph1()), 6u);
  EXPECT_EQ(opCount(*makeSubgraph2()), 21u);
  EXPECT_EQ(opCount(*makeSubgraph3()), 15u);
  EXPECT_EQ(opCount(*makeSubgraph4()), 11u);
  EXPECT_EQ(opCount(*makeSubgraph5()), 9u);
}

TEST(Networks, ModelsAreWellFormed) {
  for (const NetworkModel &N :
       {buildResNet50(), buildMobileNetV2(), buildAlexNet(),
        buildBert(21128), buildSsd()}) {
    EXPECT_FALSE(N.Layers.empty()) << N.Name;
    for (const LayerWorkload &L : N.Layers) {
      EXPECT_GT(L.Count, 0u);
      EXPECT_FALSE(L.Mod->ops().empty());
    }
  }
}

TEST(NpuSpec, ParseValidatePrintRoundTrip) {
  const char *Text = "buf UB (262144)\n"
                     "cube (L0A L0B -> L0C, 4096, 16)\n"
                     "dataflow (GM -> L1, 64, 32)\n";
  transforms::NpuSpec S;
  std::string Err;
  ASSERT_TRUE(transforms::parseNpuSpec(Text, S, Err)) << Err;
  ASSERT_EQ(S.Stmts.size(), 3u);
  EXPECT_TRUE(transforms::validateNpuSpec(S, sim::MachineSpec::ascend910(),
                                          Err))
      << Err;
  transforms::NpuSpec S2;
  ASSERT_TRUE(
      transforms::parseNpuSpec(transforms::printNpuSpec(S), S2, Err));
  EXPECT_EQ(S2.Stmts.size(), 3u);
}

TEST(NpuSpec, RejectsIllegalDataflowAndOversizedBuffers) {
  transforms::NpuSpec S;
  std::string Err;
  // L0A -> GM is not a DaVinci path (Fig 1).
  ASSERT_TRUE(
      transforms::parseNpuSpec("dataflow (L0A -> GM, 64, 32)", S, Err));
  EXPECT_FALSE(
      transforms::validateNpuSpec(S, sim::MachineSpec::ascend910(), Err));
  // Oversized UB.
  ASSERT_TRUE(transforms::parseNpuSpec("buf UB (999999999)", S, Err));
  EXPECT_FALSE(
      transforms::validateNpuSpec(S, sim::MachineSpec::ascend910(), Err));
  // Garbage.
  EXPECT_FALSE(transforms::parseNpuSpec("cube (L0A ->, 1, 1)", S, Err));
  EXPECT_FALSE(transforms::parseNpuSpec("", S, Err));
}

TEST(NpuSpec, SpecFromCompiledKernelValidates) {
  auto M = makeTensorAdd({32, 64});
  CompileResult R = compileWithAkg(*M, AkgOptions{}, "spec_src");
  transforms::NpuSpec S =
      transforms::specFromKernel(R.Kernel, sim::MachineSpec::ascend910());
  EXPECT_FALSE(S.Stmts.empty());
  std::string Err;
  EXPECT_TRUE(
      transforms::validateNpuSpec(S, sim::MachineSpec::ascend910(), Err))
      << Err << "\n"
      << transforms::printNpuSpec(S);
}

} // namespace
