//===- tests/IrTest.cpp - Expr/Stmt/DSL/preparation-pass tests ------------===//

#include "ir/Passes.h"
#include "ir/PolyExtract.h"

#include <gtest/gtest.h>

using namespace akg;
using namespace akg::ir;

namespace {

TEST(Expr, SimplifyIdentities) {
  Expr X = var("x");
  EXPECT_TRUE(exprEquals(simplifyExpr(add(X, intImm(0))), X));
  EXPECT_TRUE(exprEquals(simplifyExpr(mul(X, intImm(1))), X));
  int64_t V;
  EXPECT_TRUE(isConstInt(simplifyExpr(mul(X, intImm(0))), &V));
  EXPECT_EQ(V, 0);
  EXPECT_TRUE(isConstInt(simplifyExpr(sub(X, X)), &V));
  EXPECT_EQ(V, 0);
  // (x + 3) - (x + 1) -> 2 via linear normalization.
  Expr E = sub(add(X, intImm(3)), add(X, intImm(1)));
  EXPECT_TRUE(isConstInt(simplifyExpr(E), &V));
  EXPECT_EQ(V, 2);
}

TEST(Expr, SimplifyMinMaxWithConstantDifference) {
  Expr X = var("x");
  // min(x + 2, x) == x, max(x + 2, x) == x + 2.
  Expr Mn = simplifyExpr(minE(add(X, intImm(2)), X));
  EXPECT_TRUE(exprEquals(Mn, X));
  Expr Mx = simplifyExpr(maxE(add(X, intImm(2)), X));
  int64_t V;
  EXPECT_TRUE(isConstInt(simplifyExpr(sub(Mx, X)), &V));
  EXPECT_EQ(V, 2);
}

TEST(Expr, SimplifyComparisons) {
  int64_t V;
  EXPECT_TRUE(isConstInt(
      simplifyExpr(cmp(ExprKind::CmpLT, intImm(1), intImm(2))), &V));
  EXPECT_EQ(V, 1);
  Expr X = var("x");
  EXPECT_TRUE(
      isConstInt(simplifyExpr(cmp(ExprKind::CmpEQ, X, X)), &V));
  EXPECT_EQ(V, 1);
  // select folding through a constant condition.
  Expr S = simplifyExpr(select(cmp(ExprKind::CmpLE, intImm(3), intImm(2)),
                               intImm(10), intImm(20)));
  EXPECT_TRUE(isConstInt(S, &V));
  EXPECT_EQ(V, 20);
}

TEST(Expr, SubstituteAndEquality) {
  Expr X = var("x"), Y = var("y");
  Expr E = add(mul(X, intImm(2)), Y);
  Expr S = substitute(E, {{"x", intImm(5)}});
  int64_t V;
  EXPECT_TRUE(isConstInt(simplifyExpr(substitute(S, {{"y", intImm(1)}})),
                         &V));
  EXPECT_EQ(V, 11);
  EXPECT_TRUE(exprEquals(E, add(mul(var("x"), intImm(2)), var("y"))));
  EXPECT_FALSE(exprEquals(E, add(mul(var("x"), intImm(3)), var("y"))));
}

TEST(Dsl, EvaluatorMatchesHandComputation) {
  Module M;
  Tensor A = M.placeholder("A", {2, 3});
  IterVar K = M.reduceAxis(3, "k");
  M.compute("S", {2}, [&](const std::vector<Expr> &I) {
    return reduce(ReduceKind::Sum, tensorRead(A, {I[0], var("k")}), {K});
  }, DType::F32);
  BufferMap In;
  In["A"] = {1, 2, 3, 4, 5, 6};
  BufferMap Out = evaluateModule(M, In);
  EXPECT_FLOAT_EQ(Out["S"][0], 6.0f);
  EXPECT_FLOAT_EQ(Out["S"][1], 15.0f);
}

TEST(Dsl, MaxReductionAndIntrinsics) {
  Module M;
  Tensor A = M.placeholder("A", {4});
  IterVar K = M.reduceAxis(4, "k");
  M.compute("Mx", {1}, [&](const std::vector<Expr> &I) {
    (void)I;
    return reduce(ReduceKind::Max,
                  call("abs", {tensorRead(A, {var("k")})}, DType::F32),
                  {K});
  }, DType::F32);
  BufferMap In;
  In["A"] = {-7, 2, 5, -1};
  BufferMap Out = evaluateModule(M, In);
  EXPECT_FLOAT_EQ(Out["Mx"][0], 7.0f);
}

TEST(Passes, InlineElementwiseOps) {
  Module M;
  Tensor A = M.placeholder("A", {8});
  Tensor B = M.compute("B", {8}, [&](const std::vector<Expr> &I) {
    return add(tensorRead(A, {I[0]}), floatImm(1.0));
  });
  M.compute("C", {8}, [&](const std::vector<Expr> &I) {
    return mul(tensorRead(B, {I[0]}), floatImm(2.0));
  });
  Module Inlined = inlineElementwiseOps(M);
  EXPECT_EQ(Inlined.ops().size(), 1u); // B folded into C
  BufferMap In;
  In["A"] = makeTestData(8, 5);
  BufferMap R1 = evaluateModule(M, In);
  BufferMap R2 = evaluateModule(Inlined, In);
  for (int I = 0; I < 8; ++I)
    EXPECT_FLOAT_EQ(R1["C"][I], R2["C"][I]);
}

TEST(Passes, CseMergesDuplicates) {
  Expr X = var("x");
  Expr Dup = add(mul(X, X), mul(X, X));
  unsigned Merged = 0;
  Expr C = cseExpr(Dup, &Merged);
  EXPECT_GT(Merged, 0u);
  EXPECT_EQ(C->Operands[0].get(), C->Operands[1].get()); // shared subtree
}

TEST(Stmt, LowerToLoopsAndExecute) {
  Module M;
  Tensor A = M.placeholder("A", {3, 4});
  M.compute("B", {3, 4}, [&](const std::vector<Expr> &I) {
    return mul(tensorRead(A, I), floatImm(3.0));
  });
  Stmt S = lowerToLoops(M);
  EXPECT_EQ(countStmtNodes(S, StmtKind::For), 2u);
  BufferMap Bufs;
  Bufs["A"] = makeTestData(12, 2);
  execStmt(S, Bufs);
  BufferMap Ref = evaluateModule(M, Bufs);
  for (int I = 0; I < 12; ++I)
    EXPECT_FLOAT_EQ(Bufs["B"][I], Ref["B"][I]);
}

TEST(Stmt, ReductionLoweringHasInitAndUpdate) {
  Module M;
  Tensor A = M.placeholder("A", {4, 4});
  IterVar K = M.reduceAxis(4, "k");
  M.compute("S", {4}, [&](const std::vector<Expr> &I) {
    return reduce(ReduceKind::Sum, tensorRead(A, {I[0], var("k")}), {K});
  }, DType::F32);
  Stmt S = lowerToLoops(M);
  EXPECT_EQ(countStmtNodes(S, StmtKind::Provide), 2u); // init + update
  std::string Text = stmtToString(S);
  EXPECT_NE(Text.find("S[S_ax0] = 0"), std::string::npos);
}

TEST(PolyExtract, AffineIndexAnalysis) {
  std::vector<IterVar> Iters = {{"i", 8, false}, {"j", 8, false}};
  std::vector<int64_t> C;
  int64_t K;
  EXPECT_TRUE(exprToAffine(add(mul(intImm(3), var("i")), intImm(5)), Iters,
                           C, K));
  EXPECT_EQ(C, (std::vector<int64_t>{3, 0}));
  EXPECT_EQ(K, 5);
  EXPECT_TRUE(exprToAffine(sub(var("j"), var("i")), Iters, C, K));
  EXPECT_EQ(C, (std::vector<int64_t>{-1, 1}));
  // Non-affine: i*j.
  EXPECT_FALSE(exprToAffine(mul(var("i"), var("j")), Iters, C, K));
}

TEST(PolyExtract, DomainsAndAccessRelations) {
  Module M;
  Tensor A = M.placeholder("A", {10, 12});
  M.compute("B", {10, 12}, [&](const std::vector<Expr> &I) {
    return tensorRead(A, {I[0], I[1]});
  });
  PolyProgram P = extractPolyProgram(M);
  ASSERT_EQ(P.Stmts.size(), 1u);
  const PolyStmt &S = P.Stmts[0];
  EXPECT_EQ(S.Domain.maxOfCol(S.Domain.inCol(0)).value(), 9);
  EXPECT_EQ(S.Domain.maxOfCol(S.Domain.inCol(1)).value(), 11);
  EXPECT_EQ(S.Reads.size(), 1u);
  // The write relation maps (3, 4) to element (3, 4).
  poly::BasicSet Pt(poly::Space::forSet({"i", "j"}, "S0"));
  Pt.addEq({1, 0}, -3);
  Pt.addEq({0, 1}, -4);
  poly::BasicSet Img = poly::applyMap(Pt, S.Write.Rel);
  EXPECT_EQ(Img.fixedValue(Img.inCol(0)).value(), 3);
  EXPECT_EQ(Img.fixedValue(Img.inCol(1)).value(), 4);
}

} // namespace
