//===- tests/KernelCacheTest.cpp - Content-addressed cache keys -----------===//
//
// The cache-key canonicalization contract: alpha-renamed but structurally
// identical modules fingerprint equal; any structural difference, any
// AkgOptions field, any machine-spec parameter, and the resolved
// AKG_FAIL_STAGE override all land on distinct fingerprints; and a cache
// hit returns a bit-identical CompileResult under the requested name.
//
//===----------------------------------------------------------------------===//

#include "akg/KernelCache.h"
#include "graph/Ops.h"
#include "support/Cancel.h"
#include "support/Env.h"
#include "target/CceIr.h"

#include <atomic>
#include <chrono>
#include <gtest/gtest.h>
#include <memory>
#include <set>
#include <string>
#include <thread>

using namespace akg;
using namespace akg::ir;

namespace {

/// A reduction over a two-op chain, with every name drawn from \p Tag:
/// structurally constant, nominally parameterized.
std::shared_ptr<Module> makeNamedChain(const std::string &Tag,
                                       int64_t Rows = 8, int64_t Cols = 32,
                                       bool MulChain = false) {
  auto M = std::make_shared<Module>();
  Tensor A = M->placeholder(Tag + "_a", {Rows, Cols}, DType::F32);
  Tensor B = M->placeholder(Tag + "_b", {Rows, Cols}, DType::F32);
  Tensor T = M->compute(
      Tag + "_t", {Rows, Cols},
      [&](const std::vector<Expr> &I) {
        Expr L = tensorRead(A, I), R = tensorRead(B, I);
        return MulChain ? mul(L, R) : add(L, R);
      },
      DType::F32);
  IterVar K = M->reduceAxis(Cols, Tag + "_k");
  M->compute(
      Tag + "_out", {Rows},
      [&](const std::vector<Expr> &I) {
        return reduce(ReduceKind::Sum,
                      tensorRead(T, {I[0], var(Tag + "_k")}), {K});
      },
      DType::F32);
  return M;
}

TEST(CacheKey, AlphaRenamedModulesHashEqual) {
  auto M1 = makeNamedChain("alpha");
  auto M2 = makeNamedChain("completely_different_names");
  EXPECT_EQ(fingerprintModule(*M1), fingerprintModule(*M2));
  // But the binding fingerprint (tensor names the emitted kernel will
  // address) differs, so they occupy distinct cache lines.
  EXPECT_NE(bindingFingerprint(*M1), bindingFingerprint(*M2));
  AkgOptions O;
  EXPECT_FALSE(makeCacheKey(*M1, O) == makeCacheKey(*M2, O));
  // Same names, same structure: full key equality.
  auto M3 = makeNamedChain("alpha");
  EXPECT_TRUE(makeCacheKey(*M1, O) == makeCacheKey(*M3, O));
}

TEST(CacheKey, StructuralDifferencesHashDistinct) {
  std::set<uint64_t> Fps;
  Fps.insert(fingerprintModule(*makeNamedChain("x")));
  Fps.insert(fingerprintModule(*makeNamedChain("x", 16, 32))); // extent
  Fps.insert(fingerprintModule(*makeNamedChain("x", 8, 64)));  // extent
  Fps.insert(fingerprintModule(*makeNamedChain("x", 8, 32, true))); // op
  Fps.insert(fingerprintModule(*graph::makeMatmul(32, 32, 32)));
  Fps.insert(fingerprintModule(*graph::makeMatmul(32, 32, 64)));
  Fps.insert(fingerprintModule(*graph::makeRelu({8, 32})));
  Fps.insert(fingerprintModule(*graph::makeTensorAdd({8, 32})));
  EXPECT_EQ(Fps.size(), 8u);
  // Dtype is structural too.
  auto F16 = std::make_shared<Module>();
  auto F32 = std::make_shared<Module>();
  for (auto &[M, D] : {std::pair<Module *, DType>{F16.get(), DType::F16},
                       {F32.get(), DType::F32}}) {
    Tensor A = M->placeholder("a", {8, 8}, D);
    M->compute(
        "o", {8, 8},
        [&](const std::vector<Expr> &I) { return tensorRead(A, I); }, D);
  }
  EXPECT_NE(fingerprintModule(*F16), fingerprintModule(*F32));
}

TEST(CacheKey, EveryOptionFieldChangesFingerprint) {
  std::set<uint64_t> Fps;
  auto Probe = [&](const AkgOptions &O) {
    uint64_t F = fingerprintOptions(O);
    EXPECT_TRUE(Fps.insert(F).second)
        << "fingerprint collision between option variants";
  };
  AkgOptions Base;
  Probe(Base);

  AkgOptions O = Base;
  O.Scheduler.Fusion = sched::FusionStrategy::Aggressive;
  Probe(O);
  O = Base;
  O.Scheduler.Fusion = sched::FusionStrategy::None;
  Probe(O);
  O = Base;
  O.Scheduler.AllowSkew = !Base.Scheduler.AllowSkew;
  Probe(O);
  O = Base;
  O.Scheduler.AllowShift = !Base.Scheduler.AllowShift;
  Probe(O);
  O = Base;
  O.Scheduler.CoeffBound += 1;
  Probe(O);
  O = Base;
  O.Scheduler.ShiftBound += 1;
  Probe(O);
  O = Base;
  O.Scheduler.UseBoundingFunction = !Base.Scheduler.UseBoundingFunction;
  Probe(O);
  O = Base;
  O.Scheduler.IlpNodeBudget = 777;
  Probe(O);
  O = Base;
  O.Scheduler.DeadlineSeconds = 1.5;
  Probe(O);
  O = Base;
  O.Scheduler.ForceFallback = !Base.Scheduler.ForceFallback;
  Probe(O);

  O = Base;
  O.Codegen.EnableVectorize = !Base.Codegen.EnableVectorize;
  Probe(O);
  O = Base;
  O.Codegen.EnableDoubleBuffer = !Base.Codegen.EnableDoubleBuffer;
  Probe(O);

  O = Base;
  O.Sync = cce::SyncStrategy::TvmEmpirical;
  Probe(O);
  O = Base;
  O.Sync = cce::SyncStrategy::FullSerial;
  Probe(O);

  O = Base;
  transforms::TilingPolicy TP;
  transforms::StmtTileSpec Spec;
  Spec.Entries.push_back(transforms::TileSpecEntry{8, "UB"});
  TP.PerStmt[0] = Spec;
  O.ManualTiles = TP;
  Probe(O);
  // A different tile size under the same policy shape is a different key.
  O.ManualTiles->PerStmt[0].Entries[0].Size = 16;
  Probe(O);
  // So is the same size in a different buffer.
  O.ManualTiles->PerStmt[0].Entries[0].Size = 8;
  O.ManualTiles->PerStmt[0].Entries[0].BufferName = "L1";
  Probe(O);

  O = Base;
  O.EnablePostTilingFusion = !Base.EnablePostTilingFusion;
  Probe(O);
  O = Base;
  O.EnableIntraTile = !Base.EnableIntraTile;
  Probe(O);
  O = Base;
  O.EnableInlining = !Base.EnableInlining;
  Probe(O);
  O = Base;
  O.MaxTileRetries += 1;
  Probe(O);
  O = Base;
  O.Budget.DeadlineSeconds = 2.0;
  Probe(O);
  O = Base;
  O.Budget.IlpNodeBudget = 555;
  Probe(O);
  O = Base;
  O.FailStage = Stage::Vectorize;
  Probe(O);
  O = Base;
  O.FailStage = Stage::Sync;
  Probe(O);
}

TEST(CacheKey, EveryMachineFieldChangesFingerprint) {
  sim::MachineSpec Base = sim::MachineSpec::ascend910();
  std::set<uint64_t> Fps;
  Fps.insert(fingerprintMachine(Base));
  int64_t sim::MachineSpec::*Fields[] = {
      &sim::MachineSpec::L1Bytes,        &sim::MachineSpec::UBBytes,
      &sim::MachineSpec::L0ABytes,       &sim::MachineSpec::L0BBytes,
      &sim::MachineSpec::L0CBytes,       &sim::MachineSpec::GmBandwidth,
      &sim::MachineSpec::GmLatency,      &sim::MachineSpec::OnChipBandwidth,
      &sim::MachineSpec::OnChipLatency,  &sim::MachineSpec::BurstLatency,
      &sim::MachineSpec::CubeM,          &sim::MachineSpec::CubeN,
      &sim::MachineSpec::CubeK,          &sim::MachineSpec::CubeStartup,
      &sim::MachineSpec::VectorLanes,    &sim::MachineSpec::VectorIssue,
      &sim::MachineSpec::ScalarCost,     &sim::MachineSpec::SyncCost};
  for (auto Field : Fields) {
    sim::MachineSpec S = Base;
    S.*Field += 1;
    EXPECT_TRUE(Fps.insert(fingerprintMachine(S)).second)
        << "machine fingerprint collision";
  }
  // The machine model flows into the options fingerprint.
  AkgOptions O1, O2;
  O2.Codegen.Machine.UBBytes /= 2;
  EXPECT_NE(fingerprintOptions(O1), fingerprintOptions(O2));
}

TEST(CacheKey, EnvFailStageOverrideChangesFingerprint) {
  AkgOptions O;
  uint64_t Clean = fingerprintOptions(O);
  env::set("AKG_FAIL_STAGE", "vectorize");
  uint64_t Injected = fingerprintOptions(O);
  env::unset("AKG_FAIL_STAGE");
  EXPECT_NE(Clean, Injected);
  // And the override fingerprints like the equivalent explicit option.
  AkgOptions Explicit;
  Explicit.FailStage = Stage::Vectorize;
  EXPECT_EQ(Injected, fingerprintOptions(Explicit));
  EXPECT_EQ(Clean, fingerprintOptions(O)); // restored after unset
}

TEST(KernelCache, HitReturnsBitIdenticalResult) {
  auto M = makeNamedChain("hit");
  AkgOptions O;
  KernelCache Cache;
  CompileResult Cold = Cache.compileOrGet(*M, O, "k");
  CompileResult Warm = Cache.compileOrGet(*M, O, "k");
  EXPECT_EQ(cce::printKernel(Cold.Kernel), cce::printKernel(Warm.Kernel));
  EXPECT_EQ(Cold.ScheduleTreeDump, Warm.ScheduleTreeDump);
  EXPECT_EQ(Cold.TilingPolicyText, Warm.TilingPolicyText);
  EXPECT_EQ(Cold.TileSizes, Warm.TileSizes);
  EXPECT_EQ(Cold.Degradation.str(), Warm.Degradation.str());
  KernelCacheStats S = Cache.stats();
  EXPECT_EQ(S.Misses, 1);
  EXPECT_EQ(S.Hits, 1);
  EXPECT_EQ(S.Evictions, 0);
  EXPECT_DOUBLE_EQ(S.hitRate(), 0.5);
  EXPECT_EQ(Cache.size(), 1u);
}

TEST(KernelCache, HitCarriesRequestedName) {
  // The graph engine requests the same subgraph under per-instance names;
  // a hit must come back under the caller's name, not the cached one.
  auto M = makeNamedChain("rename");
  AkgOptions O;
  KernelCache Cache;
  CompileResult First = Cache.compileOrGet(*M, O, "net/layer#0");
  CompileResult Second = Cache.compileOrGet(*M, O, "net/layer#1");
  EXPECT_EQ(First.Kernel.Name, "net/layer#0");
  EXPECT_EQ(Second.Kernel.Name, "net/layer#1");
  Second.Kernel.Name = First.Kernel.Name;
  EXPECT_EQ(cce::printKernel(First.Kernel), cce::printKernel(Second.Kernel));
  EXPECT_EQ(Cache.stats().Hits, 1);
}

TEST(KernelCache, DistinctOptionsCompileSeparately) {
  auto M = makeNamedChain("opts");
  KernelCache Cache;
  AkgOptions O1;
  AkgOptions O2;
  O2.Codegen.EnableDoubleBuffer = false;
  Cache.compileOrGet(*M, O1, "k");
  Cache.compileOrGet(*M, O2, "k");
  EXPECT_EQ(Cache.stats().Misses, 2);
  EXPECT_EQ(Cache.stats().Hits, 0);
  EXPECT_EQ(Cache.size(), 2u);
}

TEST(KernelCache, AlphaRenamedModulesCompileSeparately) {
  // Structurally equal, differently named: the emitted kernels address
  // different GM tensors, so the binding fingerprint must keep them on
  // separate cache lines.
  auto M1 = makeNamedChain("bind_one");
  auto M2 = makeNamedChain("bind_two");
  ASSERT_EQ(fingerprintModule(*M1), fingerprintModule(*M2));
  KernelCache Cache;
  AkgOptions O;
  CompileResult R1 = Cache.compileOrGet(*M1, O, "k1");
  CompileResult R2 = Cache.compileOrGet(*M2, O, "k2");
  EXPECT_EQ(Cache.stats().Misses, 2);
  EXPECT_EQ(Cache.stats().Hits, 0);
  std::string Dump2 = cce::printKernel(R2.Kernel);
  EXPECT_NE(Dump2.find("bind_two_a"), std::string::npos);
  EXPECT_EQ(Dump2.find("bind_one_a"), std::string::npos);
}

TEST(KernelCache, LruEvictionAtCapacity) {
  KernelCache Cache(/*MaxEntries=*/2);
  EXPECT_EQ(Cache.capacity(), 2u);
  auto MA = makeNamedChain("ev", 8, 16);
  auto MB = makeNamedChain("ev", 8, 32);
  auto MC = makeNamedChain("ev", 8, 64);
  AkgOptions O;
  Cache.compileOrGet(*MA, O, "a");
  Cache.compileOrGet(*MB, O, "b");
  // Touch A so B becomes the LRU entry, then insert C.
  Cache.compileOrGet(*MA, O, "a");
  Cache.compileOrGet(*MC, O, "c");
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_EQ(Cache.stats().Evictions, 1);
  EXPECT_NE(Cache.lookup(makeCacheKey(*MA, O)), nullptr);
  EXPECT_EQ(Cache.lookup(makeCacheKey(*MB, O)), nullptr); // evicted
  EXPECT_NE(Cache.lookup(makeCacheKey(*MC, O)), nullptr);
}

// --- Single-flight failure semantics (DESIGN.md 4h) ----------------------

TEST(KernelCache, FailedCompileIsReturnedButNotCached) {
  auto M = makeNamedChain("fail");
  KernelCache Cache;
  std::atomic<int> Calls{0};
  auto FailFn = [&](const Module &Mod, const AkgOptions &O,
                    const std::string &N) {
    ++Calls;
    CompileResult R = compileWithAkg(Mod, O, N);
    R.Outcome = Status::error(ErrCode::Internal, "injected failure");
    return R;
  };
  CompileResult R = Cache.compileOrGet(*M, AkgOptions(), "k", FailFn);
  EXPECT_EQ(R.Outcome.code(), ErrCode::Internal);
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_EQ(Cache.stats().LeaderFailed, 1);
  // A later request with a healthy compile starts from scratch: the
  // failure left no entry to poison it.
  CompileResult Ok = Cache.compileOrGet(*M, AkgOptions(), "k");
  EXPECT_TRUE(Ok.Outcome.isOk());
  EXPECT_EQ(Calls.load(), 1);
  EXPECT_EQ(Cache.size(), 1u);
}

TEST(KernelCache, FailedLeaderWakesWaitersWhoRetry) {
  // Leader fails slowly; the coalesced waiter must not inherit the
  // failure or strand - it wakes, retries, becomes the next leader,
  // and compiles successfully.
  auto M = makeNamedChain("leader");
  KernelCache Cache;
  std::atomic<int> Calls{0};
  auto FlakyFn = [&](const Module &Mod, const AkgOptions &O,
                     const std::string &N) {
    int C = ++Calls;
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    CompileResult R = compileWithAkg(Mod, O, N);
    if (C == 1)
      R.Outcome = Status::error(ErrCode::Internal, "first compile dies");
    return R;
  };
  CompileResult RA, RB;
  std::thread A([&] { RA = Cache.compileOrGet(*M, AkgOptions(), "a",
                                              FlakyFn); });
  std::thread B([&] { RB = Cache.compileOrGet(*M, AkgOptions(), "b",
                                              FlakyFn); });
  A.join();
  B.join();
  // Exactly one request saw the injected failure; the other succeeded
  // (either by retrying after the leader died, or by arriving later).
  EXPECT_EQ(Calls.load(), 2);
  EXPECT_NE(RA.Outcome.isOk(), RB.Outcome.isOk());
  const CompileResult &Ok = RA.Outcome.isOk() ? RA : RB;
  EXPECT_FALSE(cce::printKernel(Ok.Kernel).empty());
  EXPECT_EQ(Cache.stats().LeaderFailed, 1);
  EXPECT_EQ(Cache.size(), 1u); // only the good result was inserted
}

TEST(KernelCache, CoalescedWaiterHonorsItsOwnCancel) {
  // A waiter parked on another request's in-flight compile observes its
  // own token: cancelling the waiter must not wait out the leader.
  auto M = makeNamedChain("waiter");
  KernelCache Cache;
  std::atomic<bool> LeaderIn{false};
  auto SlowFn = [&](const Module &Mod, const AkgOptions &O,
                    const std::string &N) {
    LeaderIn = true;
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    return compileWithAkg(Mod, O, N);
  };
  std::thread Leader([&] {
    (void)Cache.compileOrGet(*M, AkgOptions(), "leader", SlowFn);
  });
  while (!LeaderIn)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  CancelToken Tok;
  cancel::Context Ctx;
  Ctx.Token = &Tok;
  Tok.requestCancel();
  auto T0 = std::chrono::steady_clock::now();
  {
    cancel::Scope S(&Ctx);
    EXPECT_THROW(Cache.compileOrGet(*M, AkgOptions(), "w", SlowFn),
                 CancelledError);
  }
  double Waited = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - T0)
                      .count();
  EXPECT_LT(Waited, 0.15); // bailed before the 200ms leader finished
  Leader.join();
}

TEST(KernelCache, ClearResetsEntriesAndCounters) {
  auto M = makeNamedChain("clr");
  KernelCache Cache;
  Cache.compileOrGet(*M, AkgOptions{}, "k");
  Cache.compileOrGet(*M, AkgOptions{}, "k");
  ASSERT_GT(Cache.size(), 0u);
  Cache.clear();
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_EQ(Cache.stats().Hits, 0);
  EXPECT_EQ(Cache.stats().Misses, 0);
  // And the next request compiles fresh.
  Cache.compileOrGet(*M, AkgOptions{}, "k");
  EXPECT_EQ(Cache.stats().Misses, 1);
}

} // namespace
