//===- tests/KernelStoreTest.cpp - On-disk kernel store + astgen memo -----===//
//
// The persistence tier's contract (DESIGN.md 4i): a disk round-trip is
// bit-identical (printKernel and simulated cycles), a version-salt bump
// invalidates every stale entry, corruption and truncation are clean
// misses (never crashes), two processes can share a store directory
// (atomic rename = no torn reads), LRU eviction respects the size cap,
// and the ast_gen memo serves bit-identical ASTs across configurations
// that change the emitted loop-bound set.
//
//===----------------------------------------------------------------------===//

#include "akg/KernelStore.h"
#include "graph/Ops.h"
#include "sim/Simulator.h"
#include "support/Env.h"
#include "support/Stats.h"
#include "target/CceIr.h"
#include "transforms/AutoTiling.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace akg;
using namespace akg::ir;

namespace {

/// Fresh unique store directory under the gtest temp root.
std::string freshDir(const std::string &Tag) {
  static int Counter = 0;
  std::string D = testing::TempDir() + "akg_store_" + Tag + "_" +
                  std::to_string(getpid()) + "_" +
                  std::to_string(Counter++);
  mkdir(D.c_str(), 0755);
  return D;
}

/// Scoped environment override that restores the prior state.
class ScopedEnv {
public:
  ScopedEnv(const char *Name, const std::string &Value) : Name(Name) {
    Old = env::get(Name);
    env::set(Name, Value);
  }
  ~ScopedEnv() {
    if (Old)
      env::set(Name, *Old);
    else
      env::unset(Name);
  }

private:
  const char *Name;
  std::optional<std::string> Old;
};

CompileResult compileSample(const char *Name = "store_sample") {
  auto M = graph::makeTensorAdd({8, 16, 4});
  return compileWithAkg(*M, AkgOptions{}, Name);
}

CacheKey sampleKey(uint64_t Salt = 0) {
  return CacheKey{0x1111111111111111ull + Salt, 0x2222222222222222ull,
                  0x3333333333333333ull};
}

int64_t simCycles(const cce::Kernel &K) {
  sim::SimOptions SO;
  SO.Functional = false;
  return sim::simulate(K, sim::MachineSpec::ascend910(), nullptr, SO).Cycles;
}

} // namespace

//===----------------------------------------------------------------------===//
// Serialization round-trip
//===----------------------------------------------------------------------===//

TEST(KernelStoreSerde, RoundTripIsBitIdentical) {
  CompileResult R = compileSample();
  ASSERT_TRUE(R.Outcome.isOk());
  std::string Bytes = serializeCompileResult(R);
  CompileResult Back;
  ASSERT_TRUE(deserializeCompileResult(Bytes, Back));
  EXPECT_EQ(cce::printKernel(R.Kernel), cce::printKernel(Back.Kernel));
  EXPECT_EQ(simCycles(R.Kernel), simCycles(Back.Kernel));
  EXPECT_EQ(R.ScheduleTreeDump, Back.ScheduleTreeDump);
  EXPECT_EQ(R.TileSizes, Back.TileSizes);
  EXPECT_EQ(R.Trace.Events.size(), Back.Trace.Events.size());
  EXPECT_TRUE(Back.Outcome.isOk());
  // Mod is reconstructed lazily and deliberately not persisted.
  EXPECT_EQ(Back.Mod, nullptr);
}

TEST(KernelStoreSerde, TruncatedBytesFailCleanly) {
  CompileResult R = compileSample();
  std::string Bytes = serializeCompileResult(R);
  // Every prefix must fail to deserialize without crashing (the reader
  // is bounds-checked, not trusting any embedded length).
  for (size_t Cut : {size_t(0), size_t(1), Bytes.size() / 4,
                     Bytes.size() / 2, Bytes.size() - 1}) {
    CompileResult Out;
    EXPECT_FALSE(deserializeCompileResult(Bytes.substr(0, Cut), Out))
        << "prefix of " << Cut << " bytes deserialized";
  }
}

//===----------------------------------------------------------------------===//
// Disk store
//===----------------------------------------------------------------------===//

TEST(KernelStore, StoreThenLoadRoundTrips) {
  DiskKernelStore S(freshDir("roundtrip"));
  CompileResult R = compileSample();
  CacheKey K = sampleKey();
  EXPECT_EQ(S.load(K), nullptr); // cold miss
  S.store(K, R);
  auto Hit = S.load(K);
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(cce::printKernel(R.Kernel), cce::printKernel(Hit->Kernel));
  EXPECT_EQ(simCycles(R.Kernel), simCycles(Hit->Kernel));
  KernelStoreStats St = S.stats();
  EXPECT_EQ(St.DiskHits, 1);
  EXPECT_EQ(St.DiskMisses, 1);
  EXPECT_EQ(St.Stores, 1);
  EXPECT_EQ(St.Corrupt, 0);
}

TEST(KernelStore, SecondStoreInstanceSeesEntries) {
  // A "restarted service": a brand-new store over the same directory
  // (index rebuilt from the entry files) serves the old entries.
  std::string Dir = freshDir("restart");
  CompileResult R = compileSample();
  CacheKey K = sampleKey();
  {
    DiskKernelStore S(Dir);
    S.store(K, R);
  }
  // Remove the index to force the rebuild-from-scan path too.
  unlink((Dir + "/index.akgi").c_str());
  DiskKernelStore S2(Dir);
  auto Hit = S2.load(K);
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(cce::printKernel(R.Kernel), cce::printKernel(Hit->Kernel));
}

TEST(KernelStore, VersionSaltInvalidatesEntries) {
  DiskKernelStore S(freshDir("salt"));
  CompileResult R = compileSample();
  CacheKey K = sampleKey();
  S.store(K, R);
  // Rewrite the entry's version field (u64 after the u32 magic) to a
  // future salt: the load must treat the whole entry as stale.
  std::string Path = S.dir() + "/" + DiskKernelStore::entryFileName(K);
  {
    std::fstream F(Path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(F.good());
    uint64_t Bumped = kKernelStoreVersion + 1;
    F.seekp(4);
    F.write(reinterpret_cast<const char *>(&Bumped), sizeof Bumped);
  }
  EXPECT_EQ(S.load(K), nullptr);
  EXPECT_GE(S.stats().Corrupt, 1);
}

TEST(KernelStore, CorruptionIsACleanMiss) {
  DiskKernelStore S(freshDir("corrupt"));
  CompileResult R = compileSample();
  CacheKey K = sampleKey();
  std::string Path = S.dir() + "/" + DiskKernelStore::entryFileName(K);

  auto WriteRaw = [&](const std::string &Bytes) {
    std::ofstream F(Path, std::ios::binary | std::ios::trunc);
    F.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  };
  auto ReadRaw = [&]() {
    std::ifstream F(Path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(F),
                       std::istreambuf_iterator<char>());
  };

  // Truncation at various points: header, key echo, mid-payload.
  S.store(K, R);
  std::string Good = ReadRaw();
  ASSERT_GT(Good.size(), 64u);
  for (size_t Cut : {size_t(3), size_t(11), size_t(40), Good.size() / 2,
                     Good.size() - 1}) {
    WriteRaw(Good.substr(0, Cut));
    EXPECT_EQ(S.load(K), nullptr) << "truncated at " << Cut;
  }
  // Flipped payload byte: checksum catches it.
  std::string Flipped = Good;
  Flipped[Flipped.size() - 10] ^= 0x5a;
  WriteRaw(Flipped);
  EXPECT_EQ(S.load(K), nullptr);
  // Checksum-valid but semantically corrupted payload: flip a byte AND
  // refresh the stored checksum, forcing the deserializer itself to
  // reject out-of-range enums / dangling lengths without crashing.
  std::string DeepBad = Good;
  DeepBad[DeepBad.size() / 2] = char(0xff);
  {
    // Recompute FNV-1a over the payload (after the 60-byte header).
    constexpr size_t HeaderBytes = 4 + 8 * 7;
    uint64_t H = 1469598103934665603ull;
    for (size_t I = HeaderBytes; I < DeepBad.size(); ++I) {
      H ^= static_cast<unsigned char>(DeepBad[I]);
      H *= 1099511628211ull;
    }
    std::memcpy(&DeepBad[HeaderBytes - 8], &H, sizeof H);
  }
  WriteRaw(DeepBad);
  S.load(K); // may miss or (if the flipped byte was inert padding) hit -
             // either way it must not crash or return garbage enums
  // Garbage file entirely.
  WriteRaw("not a kernel entry at all");
  EXPECT_EQ(S.load(K), nullptr);
  // A valid entry stored afterwards overwrites the damage.
  S.store(K, R);
  auto Hit = S.load(K);
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(cce::printKernel(R.Kernel), cce::printKernel(Hit->Kernel));
}

TEST(KernelStore, WrongKeyFileNameIsAMiss) {
  DiskKernelStore S(freshDir("wrongkey"));
  CompileResult R = compileSample();
  CacheKey K1 = sampleKey(), K2 = sampleKey(7);
  S.store(K1, R);
  // Rename K1's entry to K2's name: the key echo in the header must
  // reject it (a hash-named file is authoritative about its content).
  ASSERT_EQ(rename((S.dir() + "/" + DiskKernelStore::entryFileName(K1))
                       .c_str(),
                   (S.dir() + "/" + DiskKernelStore::entryFileName(K2))
                       .c_str()),
            0);
  EXPECT_EQ(S.load(K2), nullptr);
  EXPECT_GE(S.stats().Corrupt, 1);
}

TEST(KernelStore, LruEvictionUnderSizeCap) {
  CompileResult R = compileSample();
  int64_t EntryBytes;
  {
    DiskKernelStore Probe(freshDir("probe"));
    Probe.store(sampleKey(), R);
    EntryBytes = Probe.sizeBytes();
    ASSERT_GT(EntryBytes, 0);
  }
  // Cap at ~3 entries, store 6: the oldest three go; the store never
  // exceeds the cap after a store() returns.
  DiskKernelStore S(freshDir("lru"), 3 * EntryBytes + EntryBytes / 2);
  for (uint64_t I = 0; I < 6; ++I) {
    S.store(sampleKey(I), R);
    EXPECT_LE(S.sizeBytes(), 3 * EntryBytes + EntryBytes / 2);
  }
  EXPECT_GE(S.stats().Evictions, 3);
  // Newest still present, oldest evicted. (Entries share one mtime
  // second, but eviction breaks ties deterministically by file name and
  // never removes more than needed, so the last stored key survives.)
  EXPECT_EQ(S.load(sampleKey(0)), nullptr);
  EXPECT_NE(S.load(sampleKey(5)), nullptr);
}

TEST(KernelStore, TwoProcessesShareAStore) {
  // Concurrent cross-process access: the child hammers stores of the
  // same keys while the parent loads them. Atomic temp-file + rename
  // publication means every load sees a complete entry or nothing.
  std::string Dir = freshDir("twoproc");
  CompileResult R = compileSample();
  std::string Want = cce::printKernel(R.Kernel);
  constexpr int Keys = 4, Rounds = 25;

  pid_t Child = fork();
  ASSERT_GE(Child, 0);
  if (Child == 0) {
    // Child process: repeatedly (re)store every key.
    DiskKernelStore S(Dir);
    for (int I = 0; I < Rounds; ++I)
      for (uint64_t J = 0; J < Keys; ++J)
        S.store(sampleKey(J), R);
    _exit(0);
  }
  DiskKernelStore S(Dir);
  int Complete = 0;
  for (int I = 0; I < Rounds; ++I)
    for (uint64_t J = 0; J < Keys; ++J)
      if (auto Hit = S.load(sampleKey(J))) {
        ++Complete;
        // Never a torn read: anything visible is the full entry.
        EXPECT_EQ(cce::printKernel(Hit->Kernel), Want);
      }
  int WStatus = 0;
  ASSERT_EQ(waitpid(Child, &WStatus, 0), Child);
  EXPECT_TRUE(WIFEXITED(WStatus) && WEXITSTATUS(WStatus) == 0);
  // After the child finished, every key must load.
  for (uint64_t J = 0; J < Keys; ++J)
    EXPECT_NE(S.load(sampleKey(J)), nullptr);
  EXPECT_EQ(S.stats().Corrupt, 0);
  (void)Complete;
}

//===----------------------------------------------------------------------===//
// Tiered cache integration (memory -> disk -> compile)
//===----------------------------------------------------------------------===//

TEST(KernelStoreTiered, SecondProcessServesFirstRequestFromDisk) {
  // Simulated restart: two distinct in-memory caches (cold memory tier)
  // over one AKG_CACHE_DIR. The second cache's FIRST request must be
  // served from disk - observable via stats().DiskHits and the cache_hit
  // trace marker - without recompiling.
  ScopedEnv Env("AKG_CACHE_DIR", freshDir("tiered"));
  auto M = graph::makeTensorAdd({4, 8, 4});
  AkgOptions Opts;

  KernelCache Cold1(16);
  CompileResult First = Cold1.compileOrGet(*M, Opts, "proc");
  ASSERT_TRUE(First.Outcome.isOk());
  EXPECT_EQ(Cold1.stats().DiskHits, 0); // fresh dir: compiled, persisted

  KernelCache Cold2(16);
  CompileResult Second = Cold2.compileOrGet(*M, Opts, "proc");
  ASSERT_TRUE(Second.Outcome.isOk());
  EXPECT_EQ(Cold2.stats().DiskHits, 1);
  EXPECT_EQ(Cold2.stats().Hits, 0);
  ASSERT_FALSE(Second.Trace.Events.empty());
  EXPECT_EQ(Second.Trace.Events[0].Pass, "cache_hit");
  EXPECT_NE(Second.Trace.Events[0].Note.find("disk"), std::string::npos);
  EXPECT_TRUE(Second.Trace.CacheHit);
  EXPECT_EQ(cce::printKernel(First.Kernel),
            cce::printKernel(Second.Kernel));
  // And the request after that is a pure memory hit.
  CompileResult Third = Cold2.compileOrGet(*M, Opts, "proc2b");
  EXPECT_EQ(Cold2.stats().Hits, 1);
  EXPECT_EQ(Third.Trace.Events[0].Pass, "cache_hit");
}

//===----------------------------------------------------------------------===//
// ast_gen memo (AKG_ASTGEN_MEMO)
//===----------------------------------------------------------------------===//

namespace {

std::string kernelWithTiles(const Module &M, int64_t Tile, bool Memo) {
  ScopedEnv Env("AKG_ASTGEN_MEMO", Memo ? "1" : "0");
  AkgOptions O;
  if (Tile > 0) {
    transforms::TilingPolicy TP;
    transforms::StmtTileSpec Spec;
    Spec.Entries.push_back(transforms::TileSpecEntry{Tile, "L1"});
    TP.PerStmt[0] = Spec;
    O.ManualTiles = TP;
  }
  return cce::printKernel(compileWithAkg(M, O, "memo_probe").Kernel);
}

} // namespace

TEST(AstGenMemo, BitIdenticalAcrossEmittedSetChanges) {
  // Different tile configurations give the same statements different
  // emitted loop-bound sets at the leaves. Because memo keys serialize
  // the full emitted-set content, entries learned under one
  // configuration must never leak into another: every memoized compile
  // matches its memo-off reference byte for byte - including recompiles
  // of earlier configs served from the (now populated, possibly
  // conflicting-if-buggy) process-global memo.
  auto M = graph::makeTensorAdd({16, 32});
  for (int Round = 0; Round < 2; ++Round)
    for (int64_t Tile : {0, 4, 8}) {
      std::string Ref = kernelWithTiles(*M, Tile, false);
      std::string Fast = kernelWithTiles(*M, Tile, true);
      EXPECT_EQ(Ref, Fast) << "tile=" << Tile << " round=" << Round;
    }
}

TEST(AstGenMemo, MemoHitsAreObservable) {
  auto M = graph::makeTensorAdd({8, 24});
  ScopedEnv Env("AKG_ASTGEN_MEMO", "1");
  compileWithAkg(*M, AkgOptions{}, "warmup");
  int64_t HitsBefore = Stats::get().counter("astgen.proj_memo_hit");
  compileWithAkg(*M, AkgOptions{}, "warm");
  EXPECT_GT(Stats::get().counter("astgen.proj_memo_hit"), HitsBefore);
}
