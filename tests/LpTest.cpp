//===- tests/LpTest.cpp - LP/ILP solver unit tests ------------------------===//

#include "poly/Lp.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace akg;

namespace {

std::vector<Rational> vec(std::initializer_list<int64_t> Vals) {
  std::vector<Rational> V;
  for (int64_t X : Vals)
    V.push_back(Rational(X));
  return V;
}

TEST(Lp, SimpleMinimize) {
  // min x + y s.t. x >= 2, y >= 3.
  LpProblem P;
  P.NumVars = 2;
  P.addIneq(vec({1, 0}), Rational(-2));
  P.addIneq(vec({0, 1}), Rational(-3));
  LpResult R = lpMinimize(P, vec({1, 1}));
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_EQ(R.Value, Rational(5));
  EXPECT_EQ(R.Point[0], Rational(2));
  EXPECT_EQ(R.Point[1], Rational(3));
}

TEST(Lp, NegativeVariables) {
  // min x s.t. x >= -7 (free variables may be negative).
  LpProblem P;
  P.NumVars = 1;
  P.addIneq(vec({1}), Rational(7));
  LpResult R = lpMinimize(P, vec({1}));
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_EQ(R.Value, Rational(-7));
}

TEST(Lp, Infeasible) {
  // x >= 3 and x <= 1.
  LpProblem P;
  P.NumVars = 1;
  P.addIneq(vec({1}), Rational(-3));
  P.addIneq(vec({-1}), Rational(1));
  EXPECT_FALSE(lpIsFeasible(P));
}

TEST(Lp, Unbounded) {
  LpProblem P;
  P.NumVars = 1;
  P.addIneq(vec({1}), Rational(0)); // x >= 0
  LpResult R = lpMaximize(P, vec({1}));
  EXPECT_EQ(R.Status, LpStatus::Unbounded);
}

TEST(Lp, EqualityConstraints) {
  // min y s.t. x + y == 10, x <= 4.
  LpProblem P;
  P.NumVars = 2;
  P.addEq(vec({1, 1}), Rational(-10));
  P.addIneq(vec({-1, 0}), Rational(4));
  LpResult R = lpMinimize(P, vec({0, 1}));
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_EQ(R.Value, Rational(6));
}

TEST(Lp, FractionalOptimum) {
  // min x s.t. 2x >= 1  ->  x = 1/2.
  LpProblem P;
  P.NumVars = 1;
  P.addIneq(vec({2}), Rational(-1));
  LpResult R = lpMinimize(P, vec({1}));
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_EQ(R.Value, Rational(1, 2));
}

TEST(Ilp, RoundsUpFractionalVertex) {
  // Integer min of x with 2x >= 1 is 1.
  LpProblem P;
  P.NumVars = 1;
  P.addIneq(vec({2}), Rational(-1));
  LpResult R = ilpMinimize(P, vec({1}));
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_EQ(R.Value, Rational(1));
}

TEST(Ilp, InfeasibleIntegerOnly) {
  // 1/3 <= x <= 2/3 has rational but no integer points.
  LpProblem P;
  P.NumVars = 1;
  P.addIneq(vec({3}), Rational(-1));
  P.addIneq(vec({-3}), Rational(2));
  EXPECT_TRUE(lpIsFeasible(P));
  LpResult R = ilpSample(P);
  EXPECT_EQ(R.Status, LpStatus::Infeasible);
}

TEST(Ilp, KnapsackStyle) {
  // min 3x + 2y s.t. 5x + 4y >= 13, x,y >= 0 integer. Optimum: x=1,y=2 -> 7.
  LpProblem P;
  P.NumVars = 2;
  P.addIneq(vec({5, 4}), Rational(-13));
  P.addIneq(vec({1, 0}), Rational(0));
  P.addIneq(vec({0, 1}), Rational(0));
  LpResult R = ilpMinimize(P, vec({3, 2}));
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_EQ(R.Value, Rational(7));
}

TEST(Ilp, LexMin) {
  // Points: x in [2,5], y in [1,4], x + y >= 6. Lexmin (x,y) = (2,4).
  LpProblem P;
  P.NumVars = 2;
  P.addIneq(vec({1, 0}), Rational(-2));
  P.addIneq(vec({-1, 0}), Rational(5));
  P.addIneq(vec({0, 1}), Rational(-1));
  P.addIneq(vec({0, -1}), Rational(4));
  P.addIneq(vec({1, 1}), Rational(-6));
  LpResult R = ilpLexMin(P, {0, 1});
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_EQ(R.Point[0], Rational(2));
  EXPECT_EQ(R.Point[1], Rational(4));
}

TEST(Ilp, SampleFindsPoint) {
  LpProblem P;
  P.NumVars = 2;
  P.addIneq(vec({1, 0}), Rational(-3));
  P.addIneq(vec({0, 1}), Rational(-4));
  P.addIneq(vec({-1, -1}), Rational(9));
  LpResult R = ilpSample(P);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_TRUE(R.Point[0] >= Rational(3));
  EXPECT_TRUE(R.Point[1] >= Rational(4));
  EXPECT_TRUE(R.Point[0] + R.Point[1] <= Rational(9));
}

/// xorshift64* - same deterministic stream as verify/Generator.cpp so the
/// differential suite reproduces independently of the standard library.
struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed * 0x9E3779B97F4A7C15ull + 0xA5A5A5A5ull) {
    next();
  }
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S * 0x2545F4914F6CDD1Dull;
  }
  int64_t range(int64_t Lo, int64_t Hi) { // inclusive
    return Lo + int64_t(next() % uint64_t(Hi - Lo + 1));
  }
  bool chance(int Pct) { return range(0, 99) < Pct; }
};

void expectSameResult(const LpResult &A, const LpResult &B,
                      const char *What, uint64_t Seed) {
  ASSERT_EQ(A.Status, B.Status) << What << " status diverged, seed " << Seed;
  if (A.Status != LpStatus::Optimal)
    return;
  EXPECT_EQ(A.Value, B.Value) << What << " value diverged, seed " << Seed;
  ASSERT_EQ(A.Point.size(), B.Point.size());
  for (size_t I = 0; I < A.Point.size(); ++I)
    EXPECT_EQ(A.Point[I], B.Point[I])
        << What << " point[" << I << "] diverged, seed " << Seed;
}

TEST(Lp, DifferentialInt64VsRational) {
  // The int64 tableau must be bit-identical to the Rational tableau on
  // every problem it accepts: same pivot rule, exact arithmetic in both.
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    Rng R(Seed);
    LpProblem P;
    P.NumVars = static_cast<unsigned>(R.range(1, 4));
    if (R.chance(50)) {
      P.NonNeg.assign(P.NumVars, false);
      for (unsigned V = 0; V < P.NumVars; ++V)
        P.NonNeg[V] = R.chance(50);
    }
    unsigned NumCons = static_cast<unsigned>(R.range(1, 6));
    for (unsigned C = 0; C < NumCons; ++C) {
      std::vector<Rational> Coeffs;
      for (unsigned V = 0; V < P.NumVars; ++V)
        Coeffs.push_back(Rational(R.range(-9, 9)));
      Rational Const(R.range(-15, 15));
      if (R.chance(20))
        P.addEq(std::move(Coeffs), Const);
      else
        P.addIneq(std::move(Coeffs), Const);
    }
    std::vector<Rational> Obj;
    for (unsigned V = 0; V < P.NumVars; ++V)
      Obj.push_back(Rational(R.range(-5, 5)));

    LpResult RI = lpMinimizeEngine(P, Obj, LpEngine::Int64);
    LpResult RR = lpMinimizeEngine(P, Obj, LpEngine::Rational);
    LpResult RA = lpMinimize(P, Obj);
    ASSERT_NE(RI.Status, LpStatus::TooHard)
        << "small-coefficient problem overflowed int64, seed " << Seed;
    expectSameResult(RI, RR, "int64 vs rational", Seed);
    expectSameResult(RA, RR, "auto vs rational", Seed);
  }
}

TEST(Lp, OverflowFallsBackToRational) {
  // Constants near INT64_MAX/2: each fits the int64 tableau, but the
  // optimum x + y = 1e19 exceeds int64, so the fast path must overflow
  // mid-solve and fall back; __int128 handles it trivially.
  const int64_t Big = 5000000000000000000; // 5e18
  LpProblem P;
  P.NumVars = 2;
  P.addIneq(vec({1, 0}), Rational(-Big)); // x >= 5e18
  P.addIneq(vec({0, 1}), Rational(-Big)); // y >= 5e18
  std::vector<Rational> Obj = vec({1, 1});

  LpResult Forced = lpMinimizeEngine(P, Obj, LpEngine::Int64);
  EXPECT_EQ(Forced.Status, LpStatus::TooHard);

  int64_t Before = Stats::get().counter("lp.rational_fallback");
  LpResult Auto = lpMinimize(P, Obj);
  LpResult Exact = lpMinimizeEngine(P, Obj, LpEngine::Rational);
  EXPECT_GT(Stats::get().counter("lp.rational_fallback"), Before);
  expectSameResult(Auto, Exact, "auto vs rational (overflow)", 0);
  ASSERT_EQ(Exact.Status, LpStatus::Optimal);
  EXPECT_EQ(Exact.Value, Rational(Big) + Rational(Big));
}

TEST(Lp, OversizedInputFallsBackToRational) {
  // A constant that does not even fit the int64 tableau's input range: the
  // fallback must trigger during conversion, before any pivoting.
  LpProblem P;
  P.NumVars = 1;
  Rational Huge = Rational(INT64_MAX) * Rational(16);
  P.addIneq({Rational(1)}, -Huge); // x >= 16 * INT64_MAX
  std::vector<Rational> Obj = vec({1});

  LpResult Forced = lpMinimizeEngine(P, Obj, LpEngine::Int64);
  EXPECT_EQ(Forced.Status, LpStatus::TooHard);
  LpResult Auto = lpMinimize(P, Obj);
  ASSERT_EQ(Auto.Status, LpStatus::Optimal);
  EXPECT_EQ(Auto.Value, Huge);
}

TEST(Lp, DegenerateCycleGuard) {
  // A classic degenerate LP; Bland's rule must terminate.
  LpProblem P;
  P.NumVars = 3;
  P.addIneq(vec({1, 0, 0}), Rational(0));
  P.addIneq(vec({0, 1, 0}), Rational(0));
  P.addIneq(vec({0, 0, 1}), Rational(0));
  P.addIneq(vec({-1, -1, -1}), Rational(1));
  LpResult R = lpMinimize(P, vec({-1, -2, -3}));
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_EQ(R.Value, Rational(-3));
}

} // namespace
