//===- tests/LpTest.cpp - LP/ILP solver unit tests ------------------------===//

#include "poly/Lp.h"

#include <gtest/gtest.h>

using namespace akg;

namespace {

std::vector<Rational> vec(std::initializer_list<int64_t> Vals) {
  std::vector<Rational> V;
  for (int64_t X : Vals)
    V.push_back(Rational(X));
  return V;
}

TEST(Lp, SimpleMinimize) {
  // min x + y s.t. x >= 2, y >= 3.
  LpProblem P;
  P.NumVars = 2;
  P.addIneq(vec({1, 0}), Rational(-2));
  P.addIneq(vec({0, 1}), Rational(-3));
  LpResult R = lpMinimize(P, vec({1, 1}));
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_EQ(R.Value, Rational(5));
  EXPECT_EQ(R.Point[0], Rational(2));
  EXPECT_EQ(R.Point[1], Rational(3));
}

TEST(Lp, NegativeVariables) {
  // min x s.t. x >= -7 (free variables may be negative).
  LpProblem P;
  P.NumVars = 1;
  P.addIneq(vec({1}), Rational(7));
  LpResult R = lpMinimize(P, vec({1}));
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_EQ(R.Value, Rational(-7));
}

TEST(Lp, Infeasible) {
  // x >= 3 and x <= 1.
  LpProblem P;
  P.NumVars = 1;
  P.addIneq(vec({1}), Rational(-3));
  P.addIneq(vec({-1}), Rational(1));
  EXPECT_FALSE(lpIsFeasible(P));
}

TEST(Lp, Unbounded) {
  LpProblem P;
  P.NumVars = 1;
  P.addIneq(vec({1}), Rational(0)); // x >= 0
  LpResult R = lpMaximize(P, vec({1}));
  EXPECT_EQ(R.Status, LpStatus::Unbounded);
}

TEST(Lp, EqualityConstraints) {
  // min y s.t. x + y == 10, x <= 4.
  LpProblem P;
  P.NumVars = 2;
  P.addEq(vec({1, 1}), Rational(-10));
  P.addIneq(vec({-1, 0}), Rational(4));
  LpResult R = lpMinimize(P, vec({0, 1}));
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_EQ(R.Value, Rational(6));
}

TEST(Lp, FractionalOptimum) {
  // min x s.t. 2x >= 1  ->  x = 1/2.
  LpProblem P;
  P.NumVars = 1;
  P.addIneq(vec({2}), Rational(-1));
  LpResult R = lpMinimize(P, vec({1}));
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_EQ(R.Value, Rational(1, 2));
}

TEST(Ilp, RoundsUpFractionalVertex) {
  // Integer min of x with 2x >= 1 is 1.
  LpProblem P;
  P.NumVars = 1;
  P.addIneq(vec({2}), Rational(-1));
  LpResult R = ilpMinimize(P, vec({1}));
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_EQ(R.Value, Rational(1));
}

TEST(Ilp, InfeasibleIntegerOnly) {
  // 1/3 <= x <= 2/3 has rational but no integer points.
  LpProblem P;
  P.NumVars = 1;
  P.addIneq(vec({3}), Rational(-1));
  P.addIneq(vec({-3}), Rational(2));
  EXPECT_TRUE(lpIsFeasible(P));
  LpResult R = ilpSample(P);
  EXPECT_EQ(R.Status, LpStatus::Infeasible);
}

TEST(Ilp, KnapsackStyle) {
  // min 3x + 2y s.t. 5x + 4y >= 13, x,y >= 0 integer. Optimum: x=1,y=2 -> 7.
  LpProblem P;
  P.NumVars = 2;
  P.addIneq(vec({5, 4}), Rational(-13));
  P.addIneq(vec({1, 0}), Rational(0));
  P.addIneq(vec({0, 1}), Rational(0));
  LpResult R = ilpMinimize(P, vec({3, 2}));
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_EQ(R.Value, Rational(7));
}

TEST(Ilp, LexMin) {
  // Points: x in [2,5], y in [1,4], x + y >= 6. Lexmin (x,y) = (2,4).
  LpProblem P;
  P.NumVars = 2;
  P.addIneq(vec({1, 0}), Rational(-2));
  P.addIneq(vec({-1, 0}), Rational(5));
  P.addIneq(vec({0, 1}), Rational(-1));
  P.addIneq(vec({0, -1}), Rational(4));
  P.addIneq(vec({1, 1}), Rational(-6));
  LpResult R = ilpLexMin(P, {0, 1});
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_EQ(R.Point[0], Rational(2));
  EXPECT_EQ(R.Point[1], Rational(4));
}

TEST(Ilp, SampleFindsPoint) {
  LpProblem P;
  P.NumVars = 2;
  P.addIneq(vec({1, 0}), Rational(-3));
  P.addIneq(vec({0, 1}), Rational(-4));
  P.addIneq(vec({-1, -1}), Rational(9));
  LpResult R = ilpSample(P);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_TRUE(R.Point[0] >= Rational(3));
  EXPECT_TRUE(R.Point[1] >= Rational(4));
  EXPECT_TRUE(R.Point[0] + R.Point[1] <= Rational(9));
}

TEST(Lp, DegenerateCycleGuard) {
  // A classic degenerate LP; Bland's rule must terminate.
  LpProblem P;
  P.NumVars = 3;
  P.addIneq(vec({1, 0, 0}), Rational(0));
  P.addIneq(vec({0, 1, 0}), Rational(0));
  P.addIneq(vec({0, 0, 1}), Rational(0));
  P.addIneq(vec({-1, -1, -1}), Rational(1));
  LpResult R = lpMinimize(P, vec({-1, -2, -3}));
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_EQ(R.Value, Rational(-3));
}

} // namespace
