//===- tests/PipelineTest.cpp - Pass pipeline + compile traces ------------===//
//
// The pass-pipeline contract: every executed pass leaves exactly one
// TraceEvent in CompileResult::Trace (in pipeline order), controller
// decisions (retile, fusion rejection, fault injection) appear as
// synthetic events, the JSON rendering matches the documented schema,
// AKG_TRACE dumps land on disk, cache-served results are marked, and
// resolveFailStage arbitrates between AKG_FAIL_STAGE and the option.
//
//===----------------------------------------------------------------------===//

#include "akg/Compiler.h"
#include "akg/KernelCache.h"
#include "akg/Pipeline.h"
#include "graph/Ops.h"
#include "ir/PolyExtract.h"
#include "schedule/AstGen.h"
#include "scheduler/Dependence.h"
#include "scheduler/Pluto.h"
#include "support/Cancel.h"
#include "support/Env.h"
#include "support/Stats.h"
#include "target/CceIr.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <memory>
#include <sstream>
#include <thread>

using namespace akg;
using namespace akg::ir;

namespace {

const sim::MachineSpec &machine() { return sim::MachineSpec::ascend910(); }

/// Executed passes of a clean single-attempt compile, in pipeline order.
const char *const CleanPasses[] = {
    "prepare",  "extract_poly", "dependences", "schedule",
    "tiling",   "build_tree",   "fusion",      "intra_tile",
    "ast_gen",  "lower_cce",    "storage_check", "sync",
};

std::vector<std::string> passNames(const CompileTrace &T) {
  std::vector<std::string> N;
  for (const TraceEvent &E : T.Events)
    N.push_back(E.Pass);
  return N;
}

AkgOptions wideRowManualTiles() {
  transforms::TilingPolicy TP;
  transforms::StmtTileSpec Spec;
  Spec.Entries.push_back(transforms::TileSpecEntry{64, "UB"});
  Spec.Entries.push_back(transforms::TileSpecEntry{8192, "UB"});
  TP.PerStmt[0] = Spec;
  AkgOptions O;
  O.ManualTiles = TP;
  return O;
}

TEST(Pipeline, CleanCompileTracesEveryPassInOrder) {
  auto M = graph::makeMatmul(64, 64, 64);
  CompileResult R = compileWithAkg(*M, AkgOptions(), "clean");
  ASSERT_TRUE(R.Degradation.Steps.empty()) << R.Degradation.str();
  std::vector<std::string> Names = passNames(R.Trace);
  std::vector<std::string> Want(std::begin(CleanPasses),
                                std::end(CleanPasses));
  EXPECT_EQ(Names, Want) << R.Trace.str();
  EXPECT_EQ(R.Trace.Kernel, "clean");
  EXPECT_FALSE(R.Trace.CacheHit);
  EXPECT_GT(R.Trace.TotalSeconds, 0);
  for (const TraceEvent &E : R.Trace.Events) {
    EXPECT_EQ(E.Attempt, 0u);
    EXPECT_EQ(E.Retry, 0u);
    EXPECT_TRUE(E.Degradations.empty()) << E.Pass;
    EXPECT_GE(E.WallSeconds, 0);
  }
}

TEST(Pipeline, PassEventsCarryCounterDeltas) {
  auto M = graph::makeMatmul(64, 64, 64);
  CompileResult R = compileWithAkg(*M, AkgOptions(), "counters");
  // The tiling/fusion/ast_gen/lower_cce/sync stages bump unconditional
  // counters; each delta must land on its own pass's event.
  auto hasCounter = [&](const char *Pass, const char *Key) {
    const TraceEvent *E = R.Trace.find(Pass);
    if (!E)
      return false;
    for (const auto &[K, V] : E->Counters)
      if (K == Key && V > 0)
        return true;
    return false;
  };
  EXPECT_TRUE(hasCounter("tiling", "autotile.runs")) << R.Trace.str();
  EXPECT_TRUE(hasCounter("fusion", "fusion.runs")) << R.Trace.str();
  EXPECT_TRUE(hasCounter("ast_gen", "astgen.runs")) << R.Trace.str();
  EXPECT_TRUE(hasCounter("lower_cce", "cce.lowered_kernels"))
      << R.Trace.str();
  EXPECT_TRUE(hasCounter("sync", "sync.flags")) << R.Trace.str();
}

TEST(Pipeline, InjectedStorageFailureTracesTheLadder) {
  auto M = graph::makeMatmul(64, 64, 64);
  AkgOptions O;
  O.FailStage = Stage::Storage;
  CompileResult R = compileWithAkg(*M, O, "degraded");
  // The fault-injection setup event leads the trace.
  ASSERT_FALSE(R.Trace.Events.empty());
  EXPECT_EQ(R.Trace.Events.front().Pass, "fault_injection");
  EXPECT_EQ(R.Trace.Events.front().Id, Stage::Storage);
  // The injected failure shows up on the storage_check event (with the
  // degradation step attached) and forces at least one retile + a second
  // walk of the tile-and-lower section.
  const TraceEvent *SC = R.Trace.find("storage_check");
  ASSERT_NE(SC, nullptr);
  ASSERT_EQ(SC->Degradations.size(), 1u);
  EXPECT_EQ(SC->Degradations[0].Where, Stage::Storage);
  EXPECT_NE(R.Trace.find("retile"), nullptr) << R.Trace.str();
  bool SawRetry1 = false;
  for (const TraceEvent &E : R.Trace.Events)
    SawRetry1 |= E.Retry == 1;
  EXPECT_TRUE(SawRetry1) << R.Trace.str();
  EXPECT_LT(verifyKernel(R.Kernel, *M, machine()), 1e-5);
}

TEST(Pipeline, KnobStagesEmitNoExecutionEvents) {
  // vectorize/double_buffer parameterize the CCE lowering; even when
  // their fault hooks fire they must not appear as executed passes.
  auto M = graph::makeMatmul(64, 64, 64);
  AkgOptions O;
  O.FailStage = Stage::Vectorize;
  CompileResult R = compileWithAkg(*M, O, "knob");
  for (const TraceEvent &E : R.Trace.Events) {
    EXPECT_NE(E.Pass, "vectorize");
    EXPECT_NE(E.Pass, "double_buffer");
  }
  // The knob flip is still visible: on the fault_injection event.
  ASSERT_FALSE(R.Trace.Events.empty());
  EXPECT_EQ(R.Trace.Events.front().Pass, "fault_injection");
  ASSERT_EQ(R.Trace.Events.front().Degradations.size(), 1u);
  EXPECT_EQ(R.Trace.Events.front().Degradations[0].Where, Stage::Vectorize);
}

TEST(Pipeline, RetryLadderEmitsOneRetileEventPerHalving) {
  auto M = graph::makeTensorAdd({64, 8192});
  CompileResult R = compileWithAkg(*M, wideRowManualTiles(), "halving");
  ASSERT_TRUE(R.Degradation.hasStage(Stage::Storage)) << R.Degradation.str();
  unsigned Retiles = 0, MaxRetry = 0;
  for (const TraceEvent &E : R.Trace.Events) {
    if (E.Pass == "retile") {
      ++Retiles;
      EXPECT_NE(E.Note.find("halved dim"), std::string::npos) << E.Note;
    }
    MaxRetry = std::max(MaxRetry, E.Retry);
  }
  // Retry numbering matches the halvings: N retiles -> retries 0..N.
  EXPECT_GE(Retiles, 1u) << R.Trace.str();
  EXPECT_EQ(MaxRetry, Retiles) << R.Trace.str();
  // The ladder converged: the final section reached sync.
  EXPECT_NE(R.Trace.find("sync"), nullptr);
  EXPECT_EQ(R.Trace.find("scalar_fallback"), nullptr);
}

TEST(Pipeline, ScalarFallbackAndFusionRejectionAreTraced) {
  auto M = graph::makeTensorAdd({64, 8192});
  AkgOptions O = wideRowManualTiles();
  O.MaxTileRetries = 0; // no halving: both attempts exhaust immediately
  CompileResult R = compileWithAkg(*M, O, "no_retries");
  EXPECT_TRUE(R.TileSizes.empty());
  // Attempt 0 exhausts -> reject_fusion -> attempt 1 exhausts -> fallback.
  const TraceEvent *RF = R.Trace.find("reject_fusion");
  ASSERT_NE(RF, nullptr) << R.Trace.str();
  EXPECT_EQ(RF->Id, Stage::Fusion);
  ASSERT_EQ(RF->Degradations.size(), 1u);
  EXPECT_EQ(RF->Degradations[0].Where, Stage::Fusion);
  bool SawAttempt1 = false;
  for (const TraceEvent &E : R.Trace.Events)
    SawAttempt1 |= E.Attempt == 1;
  EXPECT_TRUE(SawAttempt1) << R.Trace.str();
  const TraceEvent *SF = R.Trace.find("scalar_fallback");
  ASSERT_NE(SF, nullptr) << R.Trace.str();
  ASSERT_FALSE(SF->Degradations.empty());
  EXPECT_EQ(SF->Degradations[0].Where, Stage::Storage);
}

TEST(Pipeline, JsonRenderingMatchesSchema) {
  auto M = graph::makeMatmul(64, 64, 64);
  CompileResult R = compileWithAkg(*M, AkgOptions(), "json_kernel");
  std::string J = R.Trace.json();
  EXPECT_NE(J.find("{\"kernel\": \"json_kernel\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"total_seconds\": "), std::string::npos);
  EXPECT_NE(J.find("\"cache_hit\": false"), std::string::npos);
  EXPECT_NE(J.find("\"events\": [{"), std::string::npos);
  for (const char *P : CleanPasses)
    EXPECT_NE(J.find(std::string("\"pass\": \"") + P + "\""),
              std::string::npos)
        << P;
  EXPECT_NE(J.find("\"stage\": \"scheduler\""), std::string::npos);
  EXPECT_NE(J.find("\"counters\": {"), std::string::npos);
  EXPECT_NE(J.find("\"degradations\": []"), std::string::npos);
  EXPECT_EQ(J.find('\n'), std::string::npos); // one line per compile
}

TEST(Pipeline, JsonEscapesSpecialCharacters) {
  CompileTrace T;
  T.Kernel = "quote\"back\\slash\nnewline";
  TraceEvent E;
  E.Pass = "p";
  E.Note = "tab\there";
  T.Events.push_back(E);
  std::string J = T.json();
  EXPECT_NE(J.find("quote\\\"back\\\\slash\\u000anewline"),
            std::string::npos)
      << J;
  EXPECT_NE(J.find("tab\\u0009here"), std::string::npos) << J;
}

TEST(Pipeline, AkgTraceDumpsJsonlToFile) {
  std::string Path = testing::TempDir() + "akg_trace_test.jsonl";
  std::remove(Path.c_str());
  env::set("AKG_TRACE", Path);
  auto M = graph::makeMatmul(64, 64, 64);
  compileWithAkg(*M, AkgOptions(), "dump_a");
  compileWithAkg(*M, AkgOptions(), "dump_b");
  env::unset("AKG_TRACE");

  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << Path;
  std::string L1, L2, Extra;
  ASSERT_TRUE(std::getline(In, L1));
  ASSERT_TRUE(std::getline(In, L2));
  EXPECT_FALSE(std::getline(In, Extra)); // exactly one line per compile
  EXPECT_NE(L1.find("\"kernel\": \"dump_a\""), std::string::npos);
  EXPECT_NE(L2.find("\"kernel\": \"dump_b\""), std::string::npos);
  std::remove(Path.c_str());
}

TEST(Pipeline, CacheHitPrependsSyntheticEvent) {
  KernelCache Cache;
  auto M = graph::makeMatmul(64, 64, 64);
  CompileResult Miss = Cache.compileOrGet(*M, AkgOptions(), "first");
  EXPECT_FALSE(Miss.Trace.CacheHit);
  EXPECT_EQ(Miss.Trace.find("cache_hit"), nullptr);

  CompileResult Hit = Cache.compileOrGet(*M, AkgOptions(), "second");
  EXPECT_TRUE(Hit.Trace.CacheHit);
  EXPECT_EQ(Hit.Trace.Kernel, "second");
  ASSERT_FALSE(Hit.Trace.Events.empty());
  EXPECT_EQ(Hit.Trace.Events.front().Pass, "cache_hit");
  // The original compile's events ride along after the marker.
  EXPECT_NE(Hit.Trace.find("schedule"), nullptr);
}

TEST(Pipeline, PassSecondsSumsAcrossRetries) {
  auto M = graph::makeTensorAdd({64, 8192});
  CompileResult R = compileWithAkg(*M, wideRowManualTiles(), "sum");
  unsigned Lowerings = 0;
  for (const TraceEvent &E : R.Trace.Events)
    if (E.Pass == "lower_cce")
      ++Lowerings;
  ASSERT_GE(Lowerings, 2u); // at least one retry happened
  double Sum = 0;
  for (const TraceEvent &E : R.Trace.Events)
    if (E.Pass == "lower_cce")
      Sum += E.WallSeconds;
  EXPECT_DOUBLE_EQ(R.Trace.passSeconds("lower_cce"), Sum);
}

TEST(Pipeline, StatsSnapshotDiffReportsOnlyMovedCounters) {
  auto Before = Stats::get().snapshotCounters();
  Stats::get().add("pipeline_test.counter_a", 3);
  Stats::get().add("pipeline_test.counter_b", 0); // touched but unmoved
  auto After = Stats::get().snapshotCounters();
  auto Delta = Stats::diffCounters(Before, After);
  bool SawA = false;
  for (const auto &[K, V] : Delta) {
    EXPECT_NE(K, "pipeline_test.counter_b");
    if (K == "pipeline_test.counter_a") {
      SawA = true;
      EXPECT_EQ(V, 3);
    }
  }
  EXPECT_TRUE(SawA);
  // Identical snapshots diff to nothing.
  EXPECT_TRUE(Stats::diffCounters(After, After).empty());
}

// --- resolveFailStage arbitration (satellite: AKG_FAIL_STAGE precedence) --

TEST(Pipeline, ResolveFailStageUsesOptionWhenEnvUnset) {
  env::unset("AKG_FAIL_STAGE");
  AkgOptions O;
  EXPECT_EQ(resolveFailStage(O), Stage::None);
  O.FailStage = Stage::Tiling;
  EXPECT_EQ(resolveFailStage(O), Stage::Tiling);
}

TEST(Pipeline, ResolveFailStageEnvOverridesOption) {
  AkgOptions O;
  O.FailStage = Stage::Tiling;
  env::set("AKG_FAIL_STAGE", "double-buffer"); // dash form parses too
  EXPECT_EQ(resolveFailStage(O), Stage::DoubleBuffer);
  env::set("AKG_FAIL_STAGE", "storage");
  EXPECT_EQ(resolveFailStage(O), Stage::Storage);
  env::unset("AKG_FAIL_STAGE");
  EXPECT_EQ(resolveFailStage(O), Stage::Tiling);
}

// --- Deadlines + cooperative cancellation (DESIGN.md 4h) -----------------

/// An already-expired cancel::Context for driving checkpoints directly.
cancel::Context expiredContext() {
  cancel::Context Ctx;
  Ctx.DL = Deadline(1e-9);
  return Ctx;
}

TEST(PipelineCancel, PreCancelledTokenUnwindsNamingThePass) {
  auto M = graph::makeMatmul(64, 64, 64);
  AkgOptions O;
  O.Cancel = std::make_shared<CancelToken>();
  O.Cancel->requestCancel();
  CompileResult R = compileWithAkg(*M, O, "pre_cancelled");
  EXPECT_EQ(R.Outcome.code(), ErrCode::Cancelled);
  EXPECT_EQ(R.Trace.Outcome, "cancelled");
  // The terminal event names the pass the compile stopped in - with the
  // token flipped before submission, that is the very first pass.
  ASSERT_FALSE(R.Trace.Events.empty());
  const TraceEvent &Last = R.Trace.Events.back();
  EXPECT_EQ(Last.Pass, "cancelled");
  EXPECT_NE(Last.Note.find("stopped in pass 'prepare'"), std::string::npos)
      << Last.Note;
  ASSERT_EQ(Last.Degradations.size(), 1u);
  // The caller still holds a valid (scalar fallback) kernel.
  EXPECT_FALSE(cce::printKernel(R.Kernel).empty());
  EXPECT_TRUE(R.TileSizes.empty());
  // And the JSON rendering carries the outcome field.
  EXPECT_NE(R.Trace.json().find("\"outcome\": \"cancelled\""),
            std::string::npos);
}

TEST(PipelineCancel, HardDeadlineReturnsDeadlineExceeded) {
  auto M = graph::makeMatmul(96, 96, 96);
  AkgOptions O;
  O.RequestDeadlineMs = 1e-3; // expires before the first pass boundary
  CompileResult R = compileWithAkg(*M, O, "hard_deadline");
  EXPECT_EQ(R.Outcome.code(), ErrCode::DeadlineExceeded);
  EXPECT_EQ(R.Trace.Outcome, "deadline_exceeded");
  ASSERT_FALSE(R.Trace.Events.empty());
  EXPECT_EQ(R.Trace.Events.back().Pass, "deadline_exceeded");
  EXPECT_NE(R.Trace.Events.back().Note.find("stopped in pass"),
            std::string::npos);
  EXPECT_FALSE(cce::printKernel(R.Kernel).empty());
}

TEST(PipelineCancel, EnvDeadlineAppliesWhenOptionUnset) {
  auto M = graph::makeMatmul(128, 128, 128);
  env::set("AKG_DEADLINE_MS", "1"); // integer grammar, like production
  CompileResult R = compileWithAkg(*M, AkgOptions(), "env_deadline");
  env::unset("AKG_DEADLINE_MS");
  EXPECT_EQ(R.Outcome.code(), ErrCode::DeadlineExceeded);
  // The env override is per-request, not sticky: the next compile with
  // no deadline runs clean.
  CompileResult Clean = compileWithAkg(*M, AkgOptions(), "after_env");
  EXPECT_TRUE(Clean.Outcome.isOk());
  EXPECT_TRUE(Clean.Degradation.Steps.empty()) << Clean.Degradation.str();
}

TEST(PipelineCancel, UnwoundCompileLeavesNoCorruptionBehind) {
  // A deadline-unwound compile must not poison the thread-local cancel
  // state, the Stats singleton, or the next compile's trace.
  auto M = graph::makeMatmul(64, 64, 64);
  AkgOptions O;
  O.RequestDeadlineMs = 1e-3;
  for (int I = 0; I < 3; ++I) {
    CompileResult R = compileWithAkg(*M, O, "unwound");
    EXPECT_EQ(R.Outcome.code(), ErrCode::DeadlineExceeded);
  }
  EXPECT_EQ(cancel::current(), nullptr); // scope fully unwound
  CompileResult Clean = compileWithAkg(*M, AkgOptions(), "clean_after");
  EXPECT_TRUE(Clean.Outcome.isOk());
  EXPECT_TRUE(Clean.Degradation.Steps.empty()) << Clean.Degradation.str();
  std::vector<std::string> Names = passNames(Clean.Trace);
  std::vector<std::string> Want(std::begin(CleanPasses),
                                std::end(CleanPasses));
  EXPECT_EQ(Names, Want) << Clean.Trace.str();
}

// The three long-running loops each observe checkpoints directly, so an
// expired deadline unwinds from inside the loop, not just at the next
// pass boundary.

TEST(PipelineCancel, DependenceLoopObservesCheckpoints) {
  auto M = graph::makeMatmul(64, 64, 64);
  ir::PolyProgram P = ir::extractPolyProgram(*M);
  cancel::Context Ctx = expiredContext();
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  cancel::Scope S(&Ctx);
  EXPECT_THROW(sched::computeDependences(P), CancelledError);
  // The parallel fan-out propagates the context onto pool workers too.
  EXPECT_THROW(sched::computeDependences(P, 4), CancelledError);
}

TEST(PipelineCancel, PlutoMasterLoopObservesCheckpoints) {
  auto M = graph::makeMatmul(64, 64, 64);
  ir::PolyProgram P = ir::extractPolyProgram(*M);
  std::vector<sched::Dependence> Deps = sched::computeDependences(P);
  cancel::Context Ctx = expiredContext();
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  cancel::Scope S(&Ctx);
  EXPECT_THROW(sched::computeSchedule(P, Deps, sched::SchedulerOptions()),
               CancelledError);
}

TEST(PipelineCancel, AstGenLoopObservesCheckpoints) {
  auto M = graph::makeMatmul(64, 64, 64);
  ir::PolyProgram P = ir::extractPolyProgram(*M);
  std::vector<sched::Dependence> Deps = sched::computeDependences(P);
  sched::ScheduleResult SR =
      sched::computeSchedule(P, Deps, sched::SchedulerOptions());
  sched::ScheduleTree T = sched::buildScheduledTree(P, SR);
  cancel::Context Ctx = expiredContext();
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  cancel::Scope S(&Ctx);
  EXPECT_THROW(sched::generateAst(T, P), CancelledError);
}

TEST(PipelineCancel, DeadlineIsExcludedFromTheCacheKey) {
  // Two requests differing only in deadline/token must share a cache
  // line: a non-ok outcome is never inserted, so the fingerprint stays
  // honest without mixing per-request constraints into it.
  AkgOptions A;
  AkgOptions B;
  B.RequestDeadlineMs = 5000;
  B.Cancel = std::make_shared<CancelToken>();
  EXPECT_EQ(fingerprintOptions(A), fingerprintOptions(B));
}

TEST(PipelineCancel, FailedOutcomesAreNeverCached) {
  KernelCache Cache;
  auto M = graph::makeMatmul(64, 64, 64);
  AkgOptions O;
  O.RequestDeadlineMs = 1e-3;
  CompileResult R = Cache.compileOrGet(*M, O, "dl");
  EXPECT_EQ(R.Outcome.code(), ErrCode::DeadlineExceeded);
  EXPECT_EQ(Cache.size(), 0u); // the unwound result was not inserted
  // The same module without the deadline compiles and caches cleanly.
  CompileResult Ok = Cache.compileOrGet(*M, AkgOptions(), "ok");
  EXPECT_TRUE(Ok.Outcome.isOk());
  EXPECT_EQ(Cache.size(), 1u);
}

TEST(Pipeline, ResolveFailStageUnparseableEnvFallsBackToOption) {
  AkgOptions O;
  O.FailStage = Stage::Sync;
  env::set("AKG_FAIL_STAGE", "not-a-stage");
  EXPECT_EQ(resolveFailStage(O), Stage::Sync);
  env::set("AKG_FAIL_STAGE", "");
  EXPECT_EQ(resolveFailStage(O), Stage::Sync);
  env::unset("AKG_FAIL_STAGE");
}

} // namespace
