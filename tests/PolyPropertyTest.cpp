//===- tests/PolyPropertyTest.cpp - Brute-force-checked set operations ----===//
//
// Property tests for the polyhedral substrate: small sets are enumerated
// point by point and every operation (membership via bounds, intersection,
// map application, projection) is compared against the brute-force result.
// Rational Fourier-Motzkin may over-approximate integer projections in
// general; these tests pin down that it is exact on the constraint shapes
// the compiler generates (unit and small coefficients).
//
//===----------------------------------------------------------------------===//

#include "poly/Affine.h"

#include <gtest/gtest.h>

#include <set>

using namespace akg;
using namespace akg::poly;

namespace {

using Point = std::vector<int64_t>;

/// Evaluates constraint satisfaction directly.
bool contains(const BasicSet &S, const Point &P) {
  for (const Constraint &C : S.constraints()) {
    // Only handles div-free sets (the enumerated ones).
    int64_t V = C.Const;
    for (unsigned I = 0; I < P.size(); ++I)
      V += C.Coeffs[I] * P[I];
    if (C.IsEq ? V != 0 : V < 0)
      return false;
  }
  return true;
}

/// Enumerates all integer points of a div-free set within [-6, 8]^n.
std::set<Point> enumerate(const BasicSet &S) {
  unsigned N = S.space().numIn();
  std::set<Point> Out;
  Point P(N, -6);
  while (true) {
    if (contains(S, P))
      Out.insert(P);
    unsigned D = 0;
    while (D < N && ++P[D] > 8) {
      P[D] = -6;
      ++D;
    }
    if (D == N)
      break;
  }
  return Out;
}

/// Deterministic RNG.
struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed * 0x9E3779B97F4A7C15ull + 1) {}
  int64_t range(int64_t Lo, int64_t Hi) {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return Lo + int64_t(S % uint64_t(Hi - Lo + 1));
  }
};

/// Random small set over N dims: box plus a couple of relational
/// constraints with coefficients in {-2..2}.
BasicSet randomSet(Rng &R, unsigned N) {
  std::vector<std::string> Names;
  for (unsigned I = 0; I < N; ++I)
    Names.push_back("i" + std::to_string(I));
  BasicSet S(Space::forSet(Names, "S"));
  for (unsigned I = 0; I < N; ++I) {
    std::vector<int64_t> Lo(N, 0), Hi(N, 0);
    Lo[I] = 1;
    Hi[I] = -1;
    int64_t A = R.range(-4, 2), B = R.range(A, A + R.range(0, 8));
    S.addIneq(Lo, -A); // i >= A
    S.addIneq(Hi, B);  // i <= B
  }
  unsigned Extra = static_cast<unsigned>(R.range(0, 2));
  for (unsigned E = 0; E < Extra; ++E) {
    std::vector<int64_t> C(N);
    bool NonZero = false;
    for (unsigned I = 0; I < N; ++I) {
      C[I] = R.range(-2, 2);
      NonZero |= C[I] != 0;
    }
    if (!NonZero)
      continue;
    S.addIneq(C, R.range(0, 6));
  }
  return S;
}

class PolyProperty : public ::testing::TestWithParam<int> {};

TEST_P(PolyProperty, BoundsMatchEnumeration) {
  Rng R(GetParam());
  unsigned N = static_cast<unsigned>(R.range(1, 3));
  BasicSet S = randomSet(R, N);
  std::set<Point> Pts = enumerate(S);
  if (Pts.empty()) {
    // Rational emptiness may admit a fractional point; integer check must
    // agree with enumeration.
    EXPECT_TRUE(S.isEmpty(/*CheckInteger=*/true));
    return;
  }
  EXPECT_FALSE(S.isEmpty());
  for (unsigned D = 0; D < N; ++D) {
    int64_t Mn = INT64_MAX, Mx = INT64_MIN;
    for (const Point &P : Pts) {
      Mn = std::min(Mn, P[D]);
      Mx = std::max(Mx, P[D]);
    }
    // LP bounds are valid (and tight up to rational vertices).
    EXPECT_LE(S.minOfCol(S.inCol(D)).value(), Mn);
    EXPECT_GE(S.maxOfCol(S.inCol(D)).value(), Mx);
  }
}

TEST_P(PolyProperty, IntersectionIsPointwise) {
  Rng R(GetParam() + 1000);
  unsigned N = static_cast<unsigned>(R.range(1, 3));
  BasicSet A = randomSet(R, N);
  BasicSet B = randomSet(R, N);
  BasicSet I = A.intersect(B);
  std::set<Point> PA = enumerate(A), PB = enumerate(B);
  std::set<Point> Expect;
  for (const Point &P : PA)
    if (PB.count(P))
      Expect.insert(P);
  std::set<Point> Got = enumerate(I);
  EXPECT_EQ(Got, Expect);
}

TEST_P(PolyProperty, ProjectionCoversExactly) {
  // Unit-coefficient relational constraints: FM is exact.
  Rng R(GetParam() + 2000);
  BasicSet S = randomSet(R, 2);
  std::set<Point> Pts = enumerate(S);
  BasicSet P1 = S.projectOntoPrefix(1);
  std::set<int64_t> Expect;
  for (const Point &P : Pts)
    Expect.insert(P[0]);
  // Every enumerated first coordinate is inside the projection, and the
  // projection's bounds do not exceed the enumeration by more than the
  // rational relaxation allows.
  for (int64_t V : Expect) {
    BasicSet Pin = P1;
    std::vector<int64_t> Eq(Pin.numCols(), 0);
    Eq[Pin.inCol(0)] = 1;
    Pin.addEq(Eq, -V);
    EXPECT_FALSE(Pin.isEmpty()) << "projection lost point " << V;
  }
  if (!Expect.empty()) {
    EXPECT_LE(P1.minOfCol(P1.inCol(0)).value(), *Expect.begin());
    EXPECT_GE(P1.maxOfCol(P1.inCol(0)).value(), *Expect.rbegin());
  }
}

TEST_P(PolyProperty, MapApplicationMatchesSubstitution) {
  // Map [i, j] -> [a*i + b*j + c] applied to a random set: the image's
  // bounds equal the min/max of the expression over the points.
  Rng R(GetParam() + 3000);
  BasicSet S = randomSet(R, 2);
  std::set<Point> Pts = enumerate(S);
  if (Pts.empty())
    return;
  int64_t A = R.range(-2, 2), B = R.range(-2, 2), C = R.range(-3, 3);
  if (A == 0 && B == 0)
    A = 1;
  BasicMap M(Space::forMap({"i", "j"}, {"o"}, "S", "T"));
  M.addEq({A, B, -1}, C);
  BasicSet Img = applyMap(S, M);
  int64_t Mn = INT64_MAX, Mx = INT64_MIN;
  for (const Point &P : Pts) {
    int64_t V = A * P[0] + B * P[1] + C;
    Mn = std::min(Mn, V);
    Mx = std::max(Mx, V);
  }
  EXPECT_LE(Img.minOfCol(Img.inCol(0)).value(), Mn);
  EXPECT_GE(Img.maxOfCol(Img.inCol(0)).value(), Mx);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolyProperty, ::testing::Range(1, 13));

} // namespace
