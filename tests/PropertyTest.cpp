//===- tests/PropertyTest.cpp - Parameterized correctness sweeps ----------===//
//
// Property-style sweeps: for many shapes, tile configurations and operator
// mixes, every compiler path must produce a kernel whose functional
// simulation matches the reference evaluator, stay within buffer
// capacities, and respect basic structural invariants.
//
//===----------------------------------------------------------------------===//

#include "akg/Compiler.h"
#include "baselines/TvmCompiler.h"
#include "graph/Ops.h"

#include <gtest/gtest.h>

using namespace akg;
using namespace akg::ir;

namespace {

const sim::MachineSpec &machine() { return sim::MachineSpec::ascend910(); }

//===----------------------------------------------------------------------===//
// Elementwise chains over a shape sweep.
//===----------------------------------------------------------------------===//

struct ShapeCase {
  std::vector<int64_t> Shape;
};

class ElementwiseSweep : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(ElementwiseSweep, AkgMatchesReference) {
  const ShapeCase &C = GetParam();
  Module M;
  Tensor A = M.placeholder("A", C.Shape);
  Tensor B = M.placeholder("B", C.Shape);
  Tensor T = M.compute("t", C.Shape, [&](const std::vector<Expr> &I) {
    return add(mul(tensorRead(A, I), floatImm(0.5)), tensorRead(B, I));
  });
  M.compute("out", C.Shape, [&](const std::vector<Expr> &I) {
    return call("relu", {tensorRead(T, I)}, DType::F16);
  });
  CompileResult R = compileWithAkg(M, AkgOptions{}, "sweep");
  EXPECT_TRUE(cce::checkBufferCapacities(R.Kernel, machine()).empty());
  EXPECT_LT(verifyKernel(R.Kernel, M, machine()), 1e-3);
}

TEST_P(ElementwiseSweep, TvmMatchesReference) {
  const ShapeCase &C = GetParam();
  Module M;
  Tensor A = M.placeholder("A", C.Shape);
  M.compute("out", C.Shape, [&](const std::vector<Expr> &I) {
    return call("abs", {tensorRead(A, I)}, DType::F16);
  });
  baselines::TvmOptions O;
  CompileResult R = baselines::compileWithTvm(M, O, "sweep_tvm");
  EXPECT_LT(verifyKernel(R.Kernel, M, machine()), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ElementwiseSweep,
    ::testing::Values(ShapeCase{{7}}, ShapeCase{{64}}, ShapeCase{{1, 1}},
                      ShapeCase{{3, 129}}, ShapeCase{{33, 17}},
                      ShapeCase{{16, 16, 9}}, ShapeCase{{2, 3, 5, 7}},
                      ShapeCase{{16, 8, 14, 14}}, ShapeCase{{1, 256}},
                      ShapeCase{{255, 1}}));

//===----------------------------------------------------------------------===//
// Manual tile policies: any valid Fig 4 policy must stay correct.
//===----------------------------------------------------------------------===//

struct TileCase {
  int64_t T0, T1;
};

class TilePolicySweep : public ::testing::TestWithParam<TileCase> {};

TEST_P(TilePolicySweep, OverlappedFusionStaysCorrect) {
  const TileCase &C = GetParam();
  Module M;
  Tensor A = M.placeholder("A", {30, 26});
  Tensor B = M.placeholder("B", {3, 3});
  Tensor A2 = M.compute("A2", {30, 26}, [&](const std::vector<Expr> &I) {
    return add(tensorRead(A, I), floatImm(0.25));
  });
  IterVar Kh = M.reduceAxis(3, "kh");
  IterVar Kw = M.reduceAxis(3, "kw");
  M.compute("Cv", {28, 24}, [&](const std::vector<Expr> &I) {
    return reduce(ReduceKind::Sum,
                  mul(tensorRead(A2, {add(I[0], var("kh")),
                                      add(I[1], var("kw"))}),
                      tensorRead(B, {var("kh"), var("kw")})),
                  {Kh, Kw});
  });
  ir::PolyProgram P = extractPolyProgram(M);
  transforms::TilingPolicy Pol;
  transforms::StmtTileSpec Spec;
  Spec.Entries.push_back({C.T0, "UB"});
  Spec.Entries.push_back({C.T1, "UB"});
  Pol.PerStmt[P.Stmts.back().Id] = Spec;
  AkgOptions O;
  O.ManualTiles = Pol;
  CompileResult R = compileWithAkg(M, O, "tile_sweep");
  EXPECT_LT(verifyKernel(R.Kernel, M, machine()), 1e-2);
}

INSTANTIATE_TEST_SUITE_P(Tiles, TilePolicySweep,
                         ::testing::Values(TileCase{1, 1}, TileCase{1, 24},
                                           TileCase{5, 7}, TileCase{8, 8},
                                           TileCase{28, 24},
                                           TileCase{13, 24},
                                           TileCase{28, 5}));

//===----------------------------------------------------------------------===//
// Matmul size sweep across fractal-boundary shapes.
//===----------------------------------------------------------------------===//

struct MmCase {
  int64_t M, N, K;
};

class MatmulSweep : public ::testing::TestWithParam<MmCase> {};

TEST_P(MatmulSweep, FractalPipelineMatchesReference) {
  const MmCase &C = GetParam();
  auto M = graph::makeMatmul(C.M, C.N, C.K);
  CompileResult R = compileWithAkg(*M, AkgOptions{}, "mm_sweep");
  EXPECT_GT(cce::countInstrs(R.Kernel, cce::InstrKind::Mmad), 0u);
  EXPECT_LT(verifyKernel(R.Kernel, *M, machine()), 5e-2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatmulSweep,
                         ::testing::Values(MmCase{16, 16, 16},
                                           MmCase{17, 19, 23},
                                           MmCase{48, 32, 80},
                                           MmCase{1, 64, 64},
                                           MmCase{64, 1, 32},
                                           MmCase{100, 36, 144},
                                           MmCase{128, 128, 200}));

//===----------------------------------------------------------------------===//
// Convolution geometry sweep (stride / padding / channels).
//===----------------------------------------------------------------------===//

struct ConvCase {
  int64_t N, Ci, H, W, Co, K, Stride, Pad;
};

class ConvSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvSweep, Img2ColMatchesReference) {
  const ConvCase &C = GetParam();
  auto M = graph::makeConv(C.N, C.Ci, C.H, C.W, C.Co, C.K, C.K, C.Stride,
                           C.Pad);
  CompileResult R = compileWithAkg(*M, AkgOptions{}, "conv_sweep");
  EXPECT_GT(cce::countInstrs(R.Kernel, cce::InstrKind::Img2Col), 0u);
  EXPECT_LT(verifyKernel(R.Kernel, *M, machine()), 5e-2);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvSweep,
    ::testing::Values(ConvCase{1, 1, 8, 8, 1, 3, 1, 0},
                      ConvCase{2, 3, 10, 10, 4, 3, 1, 1},
                      ConvCase{1, 2, 12, 12, 2, 3, 2, 1},
                      ConvCase{2, 4, 9, 9, 8, 1, 1, 0},
                      ConvCase{1, 3, 11, 11, 2, 5, 1, 2},
                      ConvCase{2, 2, 8, 12, 3, 3, 2, 0}));

//===----------------------------------------------------------------------===//
// Scheduler options: every combination must stay legal and correct.
//===----------------------------------------------------------------------===//

struct SchedCase {
  bool Skew, Shift, Bounding;
  sched::FusionStrategy Fusion;
};

class SchedulerOptionSweep : public ::testing::TestWithParam<SchedCase> {};

TEST_P(SchedulerOptionSweep, OptionsPreserveCorrectness) {
  const SchedCase &C = GetParam();
  Module M;
  Tensor A = M.placeholder("A", {18});
  Tensor B = M.compute("B", {18}, [&](const std::vector<Expr> &I) {
    return add(tensorRead(A, {I[0]}), floatImm(1.0));
  });
  IterVar K = M.reduceAxis(3, "k");
  M.compute("C", {16}, [&](const std::vector<Expr> &I) {
    return reduce(ReduceKind::Sum, tensorRead(B, {add(I[0], var("k"))}),
                  {K});
  });
  AkgOptions O;
  O.Scheduler.AllowSkew = C.Skew;
  O.Scheduler.AllowShift = C.Shift;
  O.Scheduler.UseBoundingFunction = C.Bounding;
  O.Scheduler.Fusion = C.Fusion;
  CompileResult R = compileWithAkg(M, O, "sched_sweep");
  EXPECT_LT(verifyKernel(R.Kernel, M, machine()), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Options, SchedulerOptionSweep,
    ::testing::Values(
        SchedCase{true, true, false, sched::FusionStrategy::Conservative},
        SchedCase{false, false, false, sched::FusionStrategy::Conservative},
        SchedCase{true, true, true, sched::FusionStrategy::Conservative},
        SchedCase{true, true, false, sched::FusionStrategy::Aggressive},
        SchedCase{false, true, false, sched::FusionStrategy::None},
        SchedCase{true, false, false, sched::FusionStrategy::None}));

} // namespace
