//===- tests/ScheduleTreeTest.cpp - Schedule-tree utility tests -----------===//

#include "schedule/ScheduleTree.h"
#include "transforms/IntraTile.h"
#include "transforms/Tiling.h"

#include <gtest/gtest.h>

using namespace akg;
using namespace akg::sched;

namespace {

TEST(ScheduleTree, CloneIsDeep) {
  ScheduleTree T;
  auto Root = makeDomain();
  TreeNode *Seq = Root->addChild(makeSequence());
  TreeNode *F = Seq->addChild(makeFilter({0, 1}));
  std::map<unsigned, StmtSchedule> Part;
  Part[0] = identitySchedule(2);
  Part[1] = identitySchedule(2);
  F->addChild(makeBand(std::move(Part), true, {true, false}));
  T.setRoot(std::move(Root));

  ScheduleTree C = T.clone();
  // Mutating the clone must not affect the original.
  TreeNode *Band = findNode(C.root(), [](TreeNode *N) {
    return N->Kind == NodeKind::Band;
  });
  ASSERT_NE(Band, nullptr);
  Band->Partial[0].Rows[0].Const = 42;
  TreeNode *Orig = findNode(T.root(), [](TreeNode *N) {
    return N->Kind == NodeKind::Band;
  });
  EXPECT_EQ(Orig->Partial[0].Rows[0].Const, 0);
  EXPECT_EQ(Band->Parent->Kind, NodeKind::Filter); // parents rewired
}

TEST(ScheduleTree, ActiveStatementsRespectFiltersAndExtensions) {
  ScheduleTree T;
  auto Root = makeDomain();
  TreeNode *Seq = Root->addChild(makeSequence());
  TreeNode *F = Seq->addChild(makeFilter({2, 3}));
  poly::BasicMap Rel(poly::Space::forMap({}, {"i"}, "t", "S9"));
  Rel.addIneq({1}, 0);
  TreeNode *Ext = F->addChild(makeExtension({ExtensionDecl{9, Rel}}));
  TreeNode *Leaf = Ext->addChild(makeFilter({3, 9}));
  T.setRoot(std::move(Root));

  std::vector<unsigned> A = activeStatements(Leaf);
  // Filter {2,3} then extension adds 9, inner filter keeps {3, 9}.
  EXPECT_EQ(A, (std::vector<unsigned>{3, 9}));
}

TEST(ScheduleTree, PrinterShowsPaperNodeShapes) {
  ScheduleTree T;
  auto Root = makeDomain();
  TreeNode *F = Root->addChild(makeFilter({0}));
  TreeNode *Mk = F->addChild(makeMark("local_UB"));
  std::map<unsigned, StmtSchedule> Part;
  StmtSchedule SS;
  SS.Rows.push_back(ScheduleRow{{1, 0}, 0, 32}); // floor(i0/32)
  SS.Rows.push_back(ScheduleRow{{1, 1}, 2, 1});  // i0 + i1 + 2 (skewed)
  Part[0] = SS;
  Mk->addChild(makeBand(std::move(Part), true));
  T.setRoot(std::move(Root));
  std::string S = T.str();
  EXPECT_NE(S.find("Mark{\"local_UB\"}"), std::string::npos);
  EXPECT_NE(S.find("floor((i0)/32)"), std::string::npos);
  EXPECT_NE(S.find("i0+i1+2"), std::string::npos);
}

TEST(Tiling, TileBandPreservesChildrenAndCoincidence) {
  auto Band = makeBand(
      [] {
        std::map<unsigned, StmtSchedule> P;
        P[0] = identitySchedule(2);
        return P;
      }(),
      true, {true, true});
  TreeNode *B = Band.get();
  TreeNode *Leaf = B->addChild(makeFilter({0}));
  (void)Leaf;
  TreeNode *Point = transforms::tileBand(B, {8, 8});
  ASSERT_EQ(B->Children.size(), 1u);
  EXPECT_EQ(B->child(0), Point);
  ASSERT_EQ(Point->Children.size(), 1u);
  EXPECT_EQ(Point->child(0)->Kind, NodeKind::Filter);
  EXPECT_TRUE(Point->Coincident[0]);
  EXPECT_EQ(B->Partial[0].Rows[0].Denom, 8);
}

TEST(IntraTile, SinkSkipsSkewedBands) {
  // A skewed band (non-unit rows) must not be interchanged.
  ir::Module M;
  ir::Tensor A = M.placeholder("A", {8, 8});
  M.compute("B", {8, 8}, [&](const std::vector<ir::Expr> &I) {
    return ir::tensorRead(A, {I[1], I[0]}); // transpose-ish access
  });
  ir::PolyProgram P = ir::extractPolyProgram(M);
  ScheduleTree T;
  auto Root = makeDomain();
  TreeNode *Mk = Root->addChild(makeMark("on_chip"));
  TreeNode *F = Mk->addChild(makeFilter({0}));
  TreeNode *Mk2 = F->addChild(makeMark("local_UB"));
  std::map<unsigned, StmtSchedule> Part;
  StmtSchedule SS;
  SS.Rows.push_back(ScheduleRow{{1, 1}, 0, 1}); // skewed row
  SS.Rows.push_back(ScheduleRow{{0, 1}, 0, 1});
  Part[0] = SS;
  Mk2->addChild(makeBand(std::move(Part), true));
  T.setRoot(std::move(Root));
  EXPECT_EQ(transforms::sinkVectorizableDims(T, P), 0u);
}

} // namespace
