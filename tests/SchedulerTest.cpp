//===- tests/SchedulerTest.cpp - Dependence + Pluto scheduler tests -------===//

#include "ir/Passes.h"
#include "scheduler/Pluto.h"

#include <gtest/gtest.h>

using namespace akg;
using namespace akg::ir;
using namespace akg::sched;

namespace {

/// Builds the paper's running example (Fig 3a): bias add, 2D convolution,
/// abs, ReLU.
Module runningExample(int64_t H = 16, int64_t W = 16, int64_t KH = 3,
                      int64_t KW = 3) {
  Module M;
  Tensor A = M.placeholder("A", {H, W});
  Tensor B = M.placeholder("B", {KH, KW});
  Tensor A2 = M.compute("A2", {H, W}, [&](const std::vector<Expr> &I) {
    return add(tensorRead(A, {I[0], I[1]}), floatImm(0.5));
  });
  IterVar Kh = M.reduceAxis(KH, "kh");
  IterVar Kw = M.reduceAxis(KW, "kw");
  Tensor C =
      M.compute("C", {H - KH + 1, W - KW + 1},
                [&](const std::vector<Expr> &I) {
                  Expr Prod = mul(tensorRead(A2, {add(I[0], var("kh")),
                                                  add(I[1], var("kw"))}),
                                  tensorRead(B, {var("kh"), var("kw")}));
                  return reduce(ReduceKind::Sum, Prod, {Kh, Kw});
                });
  Tensor C2 = M.compute("C2", {H - KH + 1, W - KW + 1},
                        [&](const std::vector<Expr> &I) {
                          return call("abs", {tensorRead(C, {I[0], I[1]})},
                                      DType::F16);
                        });
  M.compute("C3", {H - KH + 1, W - KW + 1},
            [&](const std::vector<Expr> &I) {
              return call("relu", {tensorRead(C2, {I[0], I[1]})}, DType::F16);
            });
  return M;
}

TEST(PolyExtract, RunningExampleStatements) {
  Module M = runningExample();
  PolyProgram P = extractPolyProgram(M);
  // S0 = bias add, S1 = conv init, S2 = conv update, S3 = abs, S4 = relu.
  ASSERT_EQ(P.Stmts.size(), 5u);
  EXPECT_EQ(P.Stmts[0].StmtRole, PolyStmt::Role::Simple);
  EXPECT_EQ(P.Stmts[1].StmtRole, PolyStmt::Role::Init);
  EXPECT_EQ(P.Stmts[2].StmtRole, PolyStmt::Role::Update);
  EXPECT_EQ(P.Stmts[2].numIters(), 4u);
  EXPECT_EQ(P.Stmts[2].Reads.size(), 3u); // C (recurrence), A2, B
}

TEST(Dependence, ConvProducerConsumerDistances) {
  Module M = runningExample();
  PolyProgram P = extractPolyProgram(M);
  std::vector<Dependence> Deps = computeDependences(P);
  // Find the S0 -> S2 RAW dependence.
  const Dependence *Conv = nullptr;
  for (const Dependence &D : Deps)
    if (D.Src == 0 && D.Dst == 2 && D.Kind == DepKind::RAW)
      Conv = &D;
  ASSERT_NE(Conv, nullptr);
  // Distance on h: j_h - i_h where i_h = j_h + kh, kh in [0, 2]:
  // range [-2, 0].
  EXPECT_EQ(depDistanceMin(*Conv, 0, 0).value(), -2);
  EXPECT_EQ(depDistanceMax(*Conv, 0, 0).value(), 0);
}

TEST(Dependence, ReductionSelfDependence) {
  Module M = runningExample();
  PolyProgram P = extractPolyProgram(M);
  std::vector<Dependence> Deps = computeDependences(P);
  bool FoundSelf = false;
  for (const Dependence &D : Deps)
    if (D.Src == 2 && D.Dst == 2 && D.IsSelf)
      FoundSelf = true;
  EXPECT_TRUE(FoundSelf);
}

TEST(Cluster, ConservativeMatchesPaper) {
  Module M = runningExample();
  PolyProgram P = extractPolyProgram(M);
  std::vector<Dependence> Deps = computeDependences(P);
  Clustering C =
      clusterStatements(P, Deps, FusionStrategy::Conservative);
  // The paper's Fig 3(c): {S0} and {S1, S2, S3, S4}.
  ASSERT_EQ(C.Groups.size(), 2u);
  EXPECT_EQ(C.Groups[0], (std::vector<unsigned>{0}));
  EXPECT_EQ(C.Groups[1], (std::vector<unsigned>{1, 2, 3, 4}));
}

TEST(Pluto, RunningExampleSchedulesLegally) {
  Module M = runningExample();
  PolyProgram P = extractPolyProgram(M);
  std::vector<Dependence> Deps = computeDependences(P);
  SchedulerOptions Opts;
  ScheduleResult R = computeSchedule(P, Deps, Opts);
  ASSERT_EQ(R.Clusters.size(), 2u);
  for (const ClusterSchedule &CS : R.Clusters) {
    EXPECT_FALSE(CS.UsedFallback);
    EXPECT_TRUE(verifyClusterLegality(P, Deps, CS));
  }
  // The fused cluster's outer rows are coincident (h, w parallel).
  const ClusterSchedule &Fused = R.Clusters[1];
  ASSERT_EQ(Fused.Coincident.size(), 2u);
  EXPECT_TRUE(Fused.Coincident[0]);
  EXPECT_TRUE(Fused.Coincident[1]);
  // S2 gets inner completion rows for (kh, kw).
  ASSERT_TRUE(Fused.Inner.count(2));
  EXPECT_EQ(Fused.Inner.at(2).Rows.size(), 2u);
}

TEST(Pluto, IdentityForIndependentStatement) {
  Module M;
  Tensor A = M.placeholder("A", {8, 8});
  M.compute("B", {8, 8}, [&](const std::vector<Expr> &I) {
    return add(tensorRead(A, {I[0], I[1]}), floatImm(1.0));
  });
  PolyProgram P = extractPolyProgram(M);
  std::vector<Dependence> Deps = computeDependences(P);
  EXPECT_TRUE(Deps.empty());
  ScheduleResult R = computeSchedule(P, Deps, SchedulerOptions{});
  ASSERT_EQ(R.Clusters.size(), 1u);
  const StmtSchedule &S = R.Clusters[0].Outer.at(0);
  ASSERT_EQ(S.Rows.size(), 2u);
  EXPECT_EQ(S.Rows[0].Coeffs, (std::vector<int64_t>{1, 0}));
  EXPECT_EQ(S.Rows[1].Coeffs, (std::vector<int64_t>{0, 1}));
  EXPECT_TRUE(R.Clusters[0].Coincident[0]);
}

TEST(Pluto, AggressiveFusionShiftsConvConsumer) {
  // With aggressive fusion the conv consumer must be shifted by KH-1 to
  // keep the fused schedule legal (skewing/shifting beyond TVM's power).
  Module M;
  Tensor A = M.placeholder("A", {16});
  Tensor B = M.compute("B", {16}, [&](const std::vector<Expr> &I) {
    return add(tensorRead(A, {I[0]}), floatImm(1.0));
  });
  IterVar K = M.reduceAxis(3, "k");
  M.compute("C", {14}, [&](const std::vector<Expr> &I) {
    return reduce(ReduceKind::Sum,
                  tensorRead(B, {add(I[0], var("k"))}), {K});
  });
  PolyProgram P = extractPolyProgram(M);
  std::vector<Dependence> Deps = computeDependences(P);
  SchedulerOptions Opts;
  Opts.Fusion = FusionStrategy::Aggressive;
  ScheduleResult R = computeSchedule(P, Deps, Opts);
  ASSERT_EQ(R.Clusters.size(), 1u);
  const ClusterSchedule &CS = R.Clusters[0];
  EXPECT_FALSE(CS.UsedFallback);
  EXPECT_TRUE(verifyClusterLegality(P, Deps, CS));
  // The consumer statements must be shifted later than the producer.
  EXPECT_GE(CS.Outer.at(2).Rows[0].Const - CS.Outer.at(0).Rows[0].Const, 2);
}

TEST(Pluto, InitialTreeShape) {
  Module M = runningExample();
  PolyProgram P = extractPolyProgram(M);
  ScheduleTree T = buildInitialTree(P);
  std::string S = T.str();
  EXPECT_NE(S.find("Domain"), std::string::npos);
  EXPECT_NE(S.find("Sequence"), std::string::npos);
  EXPECT_NE(S.find("Filter{S1,S2}"), std::string::npos);
}

TEST(Pluto, SkewingWhenRequired) {
  // Classic stencil: B[t][i] depends on B[t-1][i-1..i+1]; tiling both dims
  // requires skewing, which the ILP must discover (not expressible in
  // TVM-style schedules, as the paper stresses).
  Module M;
  Tensor A = M.placeholder("A", {10, 34});
  IterVar K = M.reduceAxis(3, "k");
  M.compute("B", {10, 32}, [&](const std::vector<Expr> &I) {
    return reduce(ReduceKind::Sum,
                  tensorRead(A, {I[0], add(I[1], var("k"))}), {K});
  });
  PolyProgram P = extractPolyProgram(M);
  std::vector<Dependence> Deps = computeDependences(P);
  ScheduleResult R = computeSchedule(P, Deps, SchedulerOptions{});
  for (const ClusterSchedule &CS : R.Clusters)
    EXPECT_TRUE(verifyClusterLegality(P, Deps, CS));
}

TEST(DependenceParallel, DeterministicAcrossThreadCounts) {
  // The parallel fan-out must produce byte-identical dependence lists at
  // any worker count: pair-indexed slots, concatenated in sequential pair
  // order.
  Module M = runningExample();
  PolyProgram P = extractPolyProgram(M);
  std::vector<Dependence> Seq = computeDependences(P, 1);
  ASSERT_FALSE(Seq.empty());
  for (unsigned Threads : {2u, 4u, 8u}) {
    std::vector<Dependence> Par = computeDependences(P, Threads);
    ASSERT_EQ(Par.size(), Seq.size()) << Threads << " threads";
    for (size_t I = 0; I < Seq.size(); ++I) {
      EXPECT_EQ(Par[I].Src, Seq[I].Src);
      EXPECT_EQ(Par[I].Dst, Seq[I].Dst);
      EXPECT_EQ(Par[I].Kind, Seq[I].Kind);
      EXPECT_EQ(Par[I].IsSelf, Seq[I].IsSelf);
      EXPECT_EQ(Par[I].Rel.str(), Seq[I].Rel.str())
          << "relation " << I << " diverged at " << Threads << " threads";
    }
  }
}

} // namespace
