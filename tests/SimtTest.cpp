//===- tests/SimtTest.cpp - Target abstraction + SIMT backend tests -------===//
//
// Covers the target layer's dispatch edges: name tables, AKG_TARGET vs
// AkgOptions::Target arbitration, cache-key target separation (including
// per-field SimtSpec fingerprint sensitivity), SIMT lowering correctness
// against the reference evaluator, determinism across service thread
// counts, shared-memory capacity degradation through the retry ladder,
// barrier insertion, the composite JSON "target" field, the trace target
// tag, and kernel-store round-tripping of the target-specific fields.
//
//===----------------------------------------------------------------------===//

#include "akg/CompileService.h"
#include "akg/KernelCache.h"
#include "akg/KernelStore.h"
#include "composite/Composite.h"
#include "graph/Ops.h"
#include "sim/SimtRun.h"
#include "support/Env.h"
#include "target/CceIr.h"
#include "target/SimtLower.h"
#include "target/TargetBackend.h"

#include <gtest/gtest.h>

using namespace akg;
using namespace akg::graph;

namespace {

AkgOptions simtOptions() {
  AkgOptions O;
  O.Target = sim::TargetKind::Simt;
  return O;
}

/// Guard: clears AKG_TARGET for the test body and restores it after, so
/// an ambient override can never redirect these compiles.
struct TargetEnvGuard {
  std::optional<std::string> Saved = env::get("AKG_TARGET");
  TargetEnvGuard() { env::unset("AKG_TARGET"); }
  ~TargetEnvGuard() {
    if (Saved)
      env::set("AKG_TARGET", *Saved);
  }
};

// --- String tables --------------------------------------------------------

TEST(Target, NameTableIsExhaustive) {
  for (unsigned I = 0; I < sim::NumTargetKinds; ++I) {
    sim::TargetKind K = static_cast<sim::TargetKind>(I);
    std::string Name = sim::targetName(K);
    EXPECT_NE(Name, "?") << "unnamed TargetKind " << I;
    sim::TargetKind Parsed;
    ASSERT_TRUE(sim::parseTargetName(Name, Parsed)) << Name;
    EXPECT_EQ(Parsed, K);
  }
}

TEST(Target, SimtBufferNamesAreNamed) {
  EXPECT_STREQ(sim::bufferName(sim::Buffer::Shared), "SHARED");
  EXPECT_STREQ(sim::bufferName(sim::Buffer::Reg), "REG");
}

TEST(Target, ParseRejectsUnknownNamesWithoutTouchingOut) {
  sim::TargetKind K = sim::TargetKind::Simt;
  EXPECT_FALSE(sim::parseTargetName("cuda", K));
  EXPECT_FALSE(sim::parseTargetName("", K));
  EXPECT_FALSE(sim::parseTargetName("CCE", K)); // names are case-sensitive
  EXPECT_EQ(K, sim::TargetKind::Simt);
}

// --- resolveTarget arbitration (mirrors resolveFailStage) -----------------

TEST(Target, ResolveUsesOptionWhenEnvUnset) {
  TargetEnvGuard G;
  AkgOptions O;
  EXPECT_EQ(resolveTarget(O), sim::TargetKind::Cce);
  O.Target = sim::TargetKind::Simt;
  EXPECT_EQ(resolveTarget(O), sim::TargetKind::Simt);
}

TEST(Target, ResolveEnvOverridesOption) {
  TargetEnvGuard G;
  AkgOptions O;
  O.Target = sim::TargetKind::Cce;
  env::set("AKG_TARGET", "simt");
  EXPECT_EQ(resolveTarget(O), sim::TargetKind::Simt);
  env::set("AKG_TARGET", "cce");
  O.Target = sim::TargetKind::Simt;
  EXPECT_EQ(resolveTarget(O), sim::TargetKind::Cce);
}

TEST(Target, ResolveIgnoresUnparseableEnv) {
  TargetEnvGuard G;
  AkgOptions O;
  O.Target = sim::TargetKind::Simt;
  env::set("AKG_TARGET", "gpu"); // unknown name: option wins, no crash
  EXPECT_EQ(resolveTarget(O), sim::TargetKind::Simt);
}

// --- Cache-key target separation ------------------------------------------

TEST(Target, CacheKeySeparatesTargets) {
  TargetEnvGuard G;
  ModulePtr M = makeTensorAdd({8, 16});
  AkgOptions Cce;
  CacheKey KC = makeCacheKey(*M, Cce);
  CacheKey KS = makeCacheKey(*M, simtOptions());
  EXPECT_FALSE(KC == KS) << "cce and simt compiles may never share a "
                            "cache line";
  // The env override changes the key exactly like the option does.
  env::set("AKG_TARGET", "simt");
  EXPECT_TRUE(makeCacheKey(*M, Cce) == KS);
}

TEST(Target, CacheKeyCoversEverySimtSpecField) {
  TargetEnvGuard G;
  ModulePtr M = makeTensorAdd({8, 16});
  AkgOptions Base = simtOptions();
  CacheKey Ref = makeCacheKey(*M, Base);
  int64_t sim::SimtSpec::*Fields[] = {
      &sim::SimtSpec::NumSMs,          &sim::SimtSpec::MaxBlocksPerSM,
      &sim::SimtSpec::MaxThreadsPerBlock, &sim::SimtSpec::WarpSize,
      &sim::SimtSpec::SharedMemBytes,  &sim::SimtSpec::RegisterBytes,
      &sim::SimtSpec::GlobalBandwidth, &sim::SimtSpec::GlobalLatency,
      &sim::SimtSpec::CoalesceBytes,   &sim::SimtSpec::TransactionCost,
      &sim::SimtSpec::SharedLatency,   &sim::SimtSpec::SharedBandwidth,
      &sim::SimtSpec::IssueCost,       &sim::SimtSpec::ScalarCost,
      &sim::SimtSpec::BarrierCost,     &sim::SimtSpec::LaunchLatency};
  for (size_t I = 0; I < sizeof(Fields) / sizeof(Fields[0]); ++I) {
    AkgOptions O = Base;
    O.Codegen.Simt.*Fields[I] += 1;
    EXPECT_FALSE(makeCacheKey(*M, O) == Ref)
        << "SimtSpec field " << I << " missing from the fingerprint";
  }
}

TEST(Target, SharedCacheServesEachTargetItsOwnKernel) {
  TargetEnvGuard G;
  ModulePtr M = makeTensorAdd({16, 32});
  KernelCache Cache;
  CompileResult RC = Cache.compileOrGet(*M, AkgOptions{}, "dual");
  CompileResult RS = Cache.compileOrGet(*M, simtOptions(), "dual");
  EXPECT_EQ(RC.Kernel.Target, sim::TargetKind::Cce);
  EXPECT_EQ(RS.Kernel.Target, sim::TargetKind::Simt);
  EXPECT_EQ(Cache.stats().Misses, 2); // no aliasing, both compiled
  // Warm: each target hits its own entry.
  CompileResult RC2 = Cache.compileOrGet(*M, AkgOptions{}, "dual");
  CompileResult RS2 = Cache.compileOrGet(*M, simtOptions(), "dual");
  EXPECT_EQ(Cache.stats().Hits, 2);
  EXPECT_EQ(RC2.Kernel.Target, sim::TargetKind::Cce);
  EXPECT_EQ(RS2.Kernel.Target, sim::TargetKind::Simt);
  EXPECT_EQ(cce::printKernel(RC2.Kernel), cce::printKernel(RC.Kernel));
  EXPECT_EQ(cce::printKernel(RS2.Kernel), cce::printKernel(RS.Kernel));
}

// --- SIMT lowering: correctness, structure, determinism -------------------

TEST(Simt, ElementwiseMatchesReference) {
  TargetEnvGuard G;
  ModulePtr M = makeTensorAdd({16, 48, 24, 24});
  CompileResult R = compileWithAkg(*M, simtOptions(), "simt_add");
  ASSERT_TRUE(R.Outcome.isOk());
  ASSERT_EQ(R.Kernel.Target, sim::TargetKind::Simt);
  sim::FunctionalDiff D = sim::diffSimtAgainstReference(
      R.Kernel, *M, sim::SimtSpec::sm80());
  EXPECT_TRUE(D.within(2e-2)) << D.str();
}

TEST(Simt, MatmulMatchesReference) {
  TargetEnvGuard G;
  ModulePtr M = makeMatmul(64, 96, 48);
  CompileResult R = compileWithAkg(*M, simtOptions(), "simt_mm");
  ASSERT_TRUE(R.Outcome.isOk());
  sim::FunctionalDiff D = sim::diffSimtAgainstReference(
      R.Kernel, *M, sim::SimtSpec::sm80());
  EXPECT_TRUE(D.within(2e-2)) << D.str();
}

TEST(Simt, ReductionMatchesReference) {
  TargetEnvGuard G;
  ModulePtr M = makeBnReduce(8, 16, 14, 14);
  CompileResult R = compileWithAkg(*M, simtOptions(), "simt_bn");
  ASSERT_TRUE(R.Outcome.isOk());
  sim::FunctionalDiff D = sim::diffSimtAgainstReference(
      R.Kernel, *M, sim::SimtSpec::sm80());
  EXPECT_TRUE(D.within(2e-2)) << D.str();
}

TEST(Simt, KernelShapeAndBarriers) {
  TargetEnvGuard G;
  ModulePtr M = makeTensorAdd({16, 48, 24, 24});
  CompileResult R = compileWithAkg(*M, simtOptions(), "simt_shape");
  ASSERT_TRUE(R.Outcome.isOk());
  const cce::Kernel &K = R.Kernel;
  EXPECT_GE(K.GridBlocks, 1);
  EXPECT_GE(K.BlockThreads, 1);
  EXPECT_LE(K.BlockThreads, sim::SimtSpec::sm80().MaxThreadsPerBlock);
  EXPECT_EQ(K.BlockThreads % sim::SimtSpec::sm80().WarpSize, 0)
      << "block size must be warp-aligned";
  // Barriers, not set/wait flag pairs.
  EXPECT_GT(R.Sync.BarriersInserted, 0u);
  EXPECT_EQ(R.Sync.FlagsInserted, 0u);
  std::string Text = cce::printKernel(K);
  EXPECT_NE(Text.find("__simt__"), std::string::npos);
  EXPECT_NE(Text.find("__syncthreads()"), std::string::npos);
  EXPECT_NE(Text.find("blockIdx."), std::string::npos);
  EXPECT_EQ(Text.find("set_flag"), std::string::npos);
  // Every buffer lives in a SIMT memory.
  for (const cce::BufferAlloc &B : K.Buffers)
    EXPECT_TRUE(B.Location == sim::Buffer::Shared ||
                B.Location == sim::Buffer::Reg)
        << sim::bufferName(B.Location);
  EXPECT_TRUE(cce::checkSimtCapacities(K, sim::SimtSpec::sm80()).empty());
}

TEST(Simt, SimulationIsDeterministic) {
  TargetEnvGuard G;
  ModulePtr M = makeRelu({8, 32, 14, 14});
  CompileResult R = compileWithAkg(*M, simtOptions(), "simt_det");
  ASSERT_TRUE(R.Outcome.isOk());
  sim::SimtResult A, B;
  uint64_t BitsA = 0, BitsB = 0;
  sim::diffSimtAgainstReference(R.Kernel, *M, sim::SimtSpec::sm80(), 1, &A,
                                &BitsA);
  sim::diffSimtAgainstReference(R.Kernel, *M, sim::SimtSpec::sm80(), 1, &B,
                                &BitsB);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(BitsA, BitsB);
  EXPECT_GT(A.Cycles, 0);
}

TEST(Simt, CompileIsDeterministicAcrossServiceThreads) {
  TargetEnvGuard G;
  ModulePtr M = makeBnUpdate(8, 32, 14, 14);
  std::vector<CompileJob> Jobs(3, CompileJob{M.get(), simtOptions(),
                                             "simt_threads"});
  KernelCache C1, CN;
  CompileServiceOptions S1{1, &C1};
  CompileServiceOptions SN{4, &CN};
  std::vector<CompileResult> A = compileModulesParallel(Jobs, S1);
  std::vector<CompileResult> B = compileModulesParallel(Jobs, SN);
  std::string Ref = cce::printKernel(A.front().Kernel);
  EXPECT_NE(Ref.find("__simt__"), std::string::npos);
  for (const CompileResult &R : A)
    EXPECT_EQ(cce::printKernel(R.Kernel), Ref);
  for (const CompileResult &R : B)
    EXPECT_EQ(cce::printKernel(R.Kernel), Ref);
}

TEST(Simt, SharedCapacityDegradesThroughRetryLadder) {
  TargetEnvGuard G;
  // A shared memory too small for the auto-tiled footprint: the tile
  // retry ladder must halve until the kernel fits, still correct.
  ModulePtr M = makeTensorAdd({16, 64, 24, 24});
  AkgOptions O = simtOptions();
  O.Codegen.Simt.SharedMemBytes = 4 << 10;
  CompileResult R = compileWithAkg(*M, O, "simt_tiny_sm");
  ASSERT_TRUE(R.Outcome.isOk());
  EXPECT_TRUE(cce::checkSimtCapacities(R.Kernel, O.Codegen.Simt).empty());
  sim::FunctionalDiff D = sim::diffSimtAgainstReference(
      R.Kernel, *M, O.Codegen.Simt);
  EXPECT_TRUE(D.within(2e-2)) << D.str();
}

TEST(Simt, ScalarFallbackCarriesTarget) {
  TargetEnvGuard G;
  ModulePtr M = makeTensorAdd({8, 8});
  const TargetBackend &B = targetBackend(sim::TargetKind::Simt);
  cce::Kernel K = B.scalarFallback(*M, "simt_fallback");
  EXPECT_EQ(K.Target, sim::TargetKind::Simt);
  sim::FunctionalDiff D =
      sim::diffSimtAgainstReference(K, *M, sim::SimtSpec::sm80());
  EXPECT_TRUE(D.within(2e-2)) << D.str();
}

// --- verifyKernel dispatch ------------------------------------------------

TEST(Simt, VerifyKernelDispatchesOnKernelTarget) {
  TargetEnvGuard G;
  ModulePtr M = makeTensorAdd({8, 16});
  CompileResult R = compileWithAkg(*M, simtOptions(), "simt_verify");
  ASSERT_TRUE(R.Outcome.isOk());
  EXPECT_LE(verifyKernel(R.Kernel, *M, sim::MachineSpec::ascend910()), 2e-2);
}

// --- Composite JSON "target" field ----------------------------------------

TEST(CompositeTarget, PayloadFieldParsesAndRoundTrips) {
  ModulePtr M = makeTensorAdd({8, 16});
  composite::CompositeGraph G =
      composite::moduleToComposite(*M, "targeted");
  G.Target = "simt";
  std::string Payload = composite::serializeComposite(G, false);
  EXPECT_NE(Payload.find("\"target\":\"simt\""), std::string::npos);
  composite::ParseResult P = composite::parseComposite(Payload);
  ASSERT_TRUE(P.ok()) << P.Outcome.str();
  EXPECT_EQ(P.Graph.Target, "simt");
  // Absent field stays absent (pre-target payloads round-trip untouched).
  G.Target.clear();
  std::string Plain = composite::serializeComposite(G, false);
  EXPECT_EQ(Plain.find("\"target\""), std::string::npos);
  composite::ParseResult P2 = composite::parseComposite(Plain);
  ASSERT_TRUE(P2.ok());
  EXPECT_TRUE(P2.Graph.Target.empty());
}

TEST(CompositeTarget, UnknownTargetIsAStructuredDiag) {
  ModulePtr M = makeTensorAdd({8, 16});
  composite::CompositeGraph G = composite::moduleToComposite(*M, "bad");
  std::string Payload = composite::serializeComposite(G, false);
  // Splice an invalid target into an otherwise-valid payload.
  Payload.insert(1, "\"target\": \"tpu\", ");
  composite::ParseResult P = composite::parseComposite(Payload);
  EXPECT_FALSE(P.ok());
  ASSERT_FALSE(P.Diags.empty());
  EXPECT_EQ(P.Diags.front().Path, "$.target");
  // Wrong type is also a Diag, not a crash.
  std::string Payload2 = composite::serializeComposite(G, false);
  Payload2.insert(1, "\"target\": 7, ");
  composite::ParseResult P2 = composite::parseComposite(Payload2);
  EXPECT_FALSE(P2.ok());
  ASSERT_FALSE(P2.Diags.empty());
  EXPECT_EQ(P2.Diags.front().Path, "$.target");
}

TEST(CompositeTarget, ServiceHonorsPayloadTarget) {
  TargetEnvGuard G;
  ModulePtr M = makeTensorAdd({8, 16});
  composite::CompositeGraph CG =
      composite::moduleToComposite(*M, "svc_simt");
  CG.Target = "simt";
  std::string Payload = composite::serializeComposite(CG, false);
  KernelCache Cache;
  CompileService::Options SO;
  SO.Cache = &Cache;
  CompileService Svc(SO);
  CompileResult R = Svc.submitJson(Payload, AkgOptions{}).get();
  ASSERT_TRUE(R.Outcome.isOk()) << R.Outcome.str();
  EXPECT_EQ(R.Kernel.Target, sim::TargetKind::Simt);
  EXPECT_EQ(R.Trace.Target, "simt");
}

// --- Trace target tag -----------------------------------------------------

TEST(TraceTarget, TracesCarryTheResolvedTarget) {
  TargetEnvGuard G;
  ModulePtr M = makeTensorAdd({8, 16});
  CompileResult RC = compileWithAkg(*M, AkgOptions{}, "trace_cce");
  EXPECT_EQ(RC.Trace.Target, "cce");
  EXPECT_NE(RC.Trace.json().find("\"target\": \"cce\""), std::string::npos);
  CompileResult RS = compileWithAkg(*M, simtOptions(), "trace_simt");
  EXPECT_EQ(RS.Trace.Target, "simt");
  EXPECT_NE(RS.Trace.json().find("\"target\": \"simt\""), std::string::npos);
  EXPECT_NE(RS.Trace.find("lower_simt"), nullptr);
  EXPECT_EQ(RS.Trace.find("lower_cce"), nullptr);
}

// --- Kernel-store round-trip of the target fields -------------------------

TEST(SimtStore, SerializationPreservesTargetFields) {
  TargetEnvGuard G;
  ModulePtr M = makeTensorAdd({16, 32});
  CompileResult R = compileWithAkg(*M, simtOptions(), "store_simt");
  ASSERT_TRUE(R.Outcome.isOk());
  std::string Bytes = serializeCompileResult(R);
  CompileResult Out;
  ASSERT_TRUE(deserializeCompileResult(Bytes, Out));
  EXPECT_EQ(Out.Kernel.Target, sim::TargetKind::Simt);
  EXPECT_EQ(Out.Kernel.BlockThreads, R.Kernel.BlockThreads);
  EXPECT_EQ(Out.Kernel.GridBlocks, R.Kernel.GridBlocks);
  EXPECT_EQ(Out.Trace.Target, "simt");
  EXPECT_EQ(cce::printKernel(Out.Kernel), cce::printKernel(R.Kernel));
}

} // namespace
