//===- tests/StorageTest.cpp - Storage management regression tests --------===//
//
// Covers the storage-management behaviours of Sec 4.4 as implemented:
// liveness-based buffer reuse accounting, first-use DMA scheduling,
// K-chunk streaming of matmul operands through L1, and the
// fusion-rejection fallback when even minimal tiles cannot satisfy the
// capacities.
//
//===----------------------------------------------------------------------===//

#include "akg/Compiler.h"
#include "graph/Ops.h"
#include "sim/Simulator.h"

#include <gtest/gtest.h>

using namespace akg;
using namespace akg::ir;

namespace {

const sim::MachineSpec &machine() { return sim::MachineSpec::ascend910(); }

TEST(Storage, LongChainReusesUbBuffers) {
  // A 12-op elementwise chain: without liveness reuse the per-tensor
  // allocations would cap the tile size; with reuse the compiler keeps a
  // large tile and the kernel still verifies.
  Module M;
  Tensor A = M.placeholder("A", {64, 256});
  Tensor Cur = A;
  for (int I = 0; I < 12; ++I)
    Cur = M.compute("t" + std::to_string(I), {64, 256},
                    [&](const std::vector<Expr> &Ix) {
                      return add(tensorRead(Cur, Ix), floatImm(1.0));
                    });
  CompileResult R = compileWithAkg(M, AkgOptions{}, "chain");
  // Static sum of UB allocations exceeds UB, yet the liveness-aware check
  // accepts the kernel.
  int64_t StaticSum = 0;
  for (const cce::BufferAlloc &B : R.Kernel.Buffers)
    if (B.Location == sim::Buffer::UB)
      StaticSum += B.bytes() * (B.DoubleBuffered ? 2 : 1);
  EXPECT_TRUE(cce::checkBufferCapacities(R.Kernel, machine()).empty());
  // The chosen tile is big enough that naive (no-reuse) accounting would
  // not fit.
  EXPECT_GT(StaticSum, machine().UBBytes / 2);
  EXPECT_LT(verifyKernel(R.Kernel, M, machine()), 1e-3);
}

TEST(Storage, MatmulOperandsStreamKChunks) {
  // K = 1024 exceeds the chunk size: the A/B boxes must hold only a chunk
  // (L1 feasible) and the DMA sits inside the cube pipeline.
  auto M = graph::makeMatmul(128, 128, 1024);
  CompileResult R = compileWithAkg(*M, AkgOptions{}, "kstream");
  int64_t L1Bytes = 0;
  for (const cce::BufferAlloc &B : R.Kernel.Buffers)
    if (B.Location == sim::Buffer::L1)
      L1Bytes += B.bytes();
  // Whole-K residency would need (128 + 128) * 1024 * 2 = 512 KiB; the
  // chunked boxes are far smaller.
  EXPECT_LT(L1Bytes, 200 * 1024);
  EXPECT_LT(verifyKernel(R.Kernel, *M, machine()), 5e-2);
}

TEST(Storage, FusionRejectedWhenRowsCannotFit) {
  // A softmax-style normalization over very wide rows: several live
  // intermediates of 32K floats cannot fit in UB together, so the
  // compiler must reject the fusion (per-operator regions) and still
  // produce a working kernel.
  int64_t Cols = 32768;
  Module M;
  Tensor X = M.placeholder("X", {4, Cols}, DType::F32);
  IterVar Rd = M.reduceAxis(Cols, "rd");
  Tensor Mx = M.compute("mx", {4}, [&](const std::vector<Expr> &I) {
    return reduce(ReduceKind::Max, tensorRead(X, {I[0], var("rd")}), {Rd});
  }, DType::F32);
  Tensor Ex = M.compute("ex", {4, Cols}, [&](const std::vector<Expr> &I) {
    return call("exp", {sub(tensorRead(X, I), tensorRead(Mx, {I[0]}))},
                DType::F32);
  }, DType::F32);
  IterVar Rd2 = M.reduceAxis(Cols, "rd2");
  Tensor Sm = M.compute("sm", {4}, [&](const std::vector<Expr> &I) {
    return reduce(ReduceKind::Sum, tensorRead(Ex, {I[0], var("rd2")}),
                  {Rd2});
  }, DType::F32);
  M.compute("pr", {4, Cols}, [&](const std::vector<Expr> &I) {
    return mul(tensorRead(Ex, I),
               call("recip", {tensorRead(Sm, {I[0]})}, DType::F32));
  }, DType::F32);
  CompileResult R = compileWithAkg(M, AkgOptions{}, "wide_softmax");
  EXPECT_TRUE(cce::checkBufferCapacities(R.Kernel, machine()).empty());
  EXPECT_LT(verifyKernel(R.Kernel, M, machine()), 1e-2);
}

TEST(Storage, SimulatorTruncatesRunawayConfigs) {
  // A degenerate manual tiling (1 x 16 on a large GEMM) must not hang the
  // performance simulation: it truncates and reports a lower bound.
  auto M = graph::makeMatmul(2048, 2048, 2048);
  ir::PolyProgram P = ir::extractPolyProgram(*M);
  AkgOptions O;
  transforms::TilingPolicy Pol;
  transforms::StmtTileSpec S;
  S.Entries.push_back({1, "UB"});
  S.Entries.push_back({16, "UB"});
  Pol.PerStmt[P.Stmts.back().Id] = S;
  O.ManualTiles = Pol;
  CompileResult R = compileWithAkg(*M, O, "degenerate");
  sim::SimOptions SO;
  SO.Functional = false;
  SO.MaxDynamicInstrs = 100000;
  sim::SimResult Res = sim::simulate(R.Kernel, machine(), nullptr, SO);
  EXPECT_TRUE(Res.Truncated);
  EXPECT_GT(Res.Cycles, 0);
}

TEST(Storage, DmaScheduledAtFirstUse) {
  // An input consumed at the end of a chain must not be loaded first: its
  // live interval would otherwise overlap the whole chain and defeat
  // reuse. We check that the kernel still fits (the behaviour the
  // scheduling enables) and verifies.
  Module M;
  Tensor A = M.placeholder("A", {64, 512});
  Tensor Late = M.placeholder("Late", {64, 512});
  Tensor Cur = A;
  for (int I = 0; I < 8; ++I)
    Cur = M.compute("s" + std::to_string(I), {64, 512},
                    [&](const std::vector<Expr> &Ix) {
                      return mul(tensorRead(Cur, Ix), floatImm(1.01));
                    });
  M.compute("out", {64, 512}, [&](const std::vector<Expr> &Ix) {
    return add(tensorRead(Cur, Ix), tensorRead(Late, Ix));
  });
  CompileResult R = compileWithAkg(M, AkgOptions{}, "late_input");
  EXPECT_TRUE(cce::checkBufferCapacities(R.Kernel, machine()).empty());
  EXPECT_LT(verifyKernel(R.Kernel, M, machine()), 1e-3);
}

} // namespace
