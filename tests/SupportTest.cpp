//===- tests/SupportTest.cpp - Rational / Matrix / Cancel / pool tests ----===//

#include "support/Cancel.h"
#include "support/Matrix.h"
#include "support/Rational.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <chrono>
#include <future>
#include <gtest/gtest.h>
#include <stdexcept>
#include <thread>

using namespace akg;

namespace {

TEST(Rational, NormalizationAndArithmetic) {
  Rational A(6, 4);
  EXPECT_EQ(A.num(), 3);
  EXPECT_EQ(A.den(), 2);
  Rational B(-6, 4);
  EXPECT_EQ(B.num(), -3);
  EXPECT_EQ(B.den(), 2);
  Rational C(1, -2);
  EXPECT_EQ(C.num(), -1);
  EXPECT_EQ(C.den(), 2);
  EXPECT_EQ(A + B, Rational(0));
  EXPECT_EQ(A * Rational(2, 3), Rational(1));
  EXPECT_EQ(Rational(7, 2) / Rational(7), Rational(1, 2));
  EXPECT_EQ((A - Rational(1)).str(), "1/2");
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), Rational(3));
  EXPECT_EQ(Rational(7, 2).ceil(), Rational(4));
  EXPECT_EQ(Rational(-7, 2).floor(), Rational(-4));
  EXPECT_EQ(Rational(-7, 2).ceil(), Rational(-3));
  EXPECT_EQ(Rational(4).floor(), Rational(4));
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_GE(Rational(2, 4), Rational(1, 2));
  EXPECT_TRUE(Rational(5, 10) == Rational(1, 2));
}

TEST(Matrix, RankAndInverse) {
  Matrix M(2, 2);
  M.at(0, 0) = Rational(1);
  M.at(0, 1) = Rational(2);
  M.at(1, 0) = Rational(3);
  M.at(1, 1) = Rational(4);
  EXPECT_EQ(M.rank(), 2u);
  Matrix Inv = M.inverse();
  Matrix Id = M.multiply(Inv);
  for (unsigned I = 0; I < 2; ++I)
    for (unsigned J = 0; J < 2; ++J)
      EXPECT_EQ(Id.at(I, J), Rational(I == J ? 1 : 0));
}

TEST(Matrix, RankDeficiency) {
  Matrix M(2, 3);
  for (unsigned J = 0; J < 3; ++J) {
    M.at(0, J) = Rational(int64_t(J + 1));
    M.at(1, J) = Rational(int64_t(2 * (J + 1))); // 2x row 0
  }
  EXPECT_EQ(M.rank(), 1u);
}

TEST(Matrix, NullSpaceOrthogonality) {
  // Row space spanned by (1, 1, 0): null space is 2-dimensional and
  // orthogonal to it.
  Matrix M(1, 3);
  M.at(0, 0) = Rational(1);
  M.at(0, 1) = Rational(1);
  Matrix N = M.orthogonalComplement();
  EXPECT_EQ(N.rows(), 2u);
  for (unsigned R = 0; R < N.rows(); ++R) {
    Rational Dot;
    for (unsigned C = 0; C < 3; ++C)
      Dot += M.at(0, C) * N.at(R, C);
    EXPECT_EQ(Dot, Rational(0));
  }
}

TEST(Matrix, ApplyVector) {
  Matrix M(2, 2);
  M.at(0, 0) = Rational(2);
  M.at(1, 1) = Rational(3);
  auto R = M.apply({Rational(5), Rational(7)});
  EXPECT_EQ(R[0], Rational(10));
  EXPECT_EQ(R[1], Rational(21));
}

// --- Cancellation primitives (DESIGN.md 4h) ------------------------------

TEST(Cancel, UnarmedCheckpointsAreNoOps) {
  // No scope installed: nothing to trip.
  EXPECT_EQ(cancel::current(), nullptr);
  EXPECT_EQ(cancel::interrupted(), ErrCode::Ok);
  EXPECT_NO_THROW(cancel::checkPoint("anywhere"));
  // A scope with neither deadline nor token is equally inert.
  cancel::Context Ctx;
  cancel::Scope S(&Ctx);
  EXPECT_EQ(cancel::interrupted(), ErrCode::Ok);
  EXPECT_NO_THROW(cancel::checkPoint());
}

TEST(Cancel, TokenTripsCheckpointWithWhere) {
  CancelToken Tok;
  cancel::Context Ctx;
  Ctx.Token = &Tok;
  cancel::Scope S(&Ctx);
  EXPECT_EQ(cancel::interrupted(), ErrCode::Ok);
  Tok.requestCancel();
  EXPECT_EQ(cancel::interrupted(), ErrCode::Cancelled);
  try {
    cancel::checkPoint("unit_test_loop");
    FAIL() << "checkpoint did not throw";
  } catch (const CancelledError &E) {
    EXPECT_EQ(E.code(), ErrCode::Cancelled);
    EXPECT_EQ(E.where(), "unit_test_loop");
  }
}

TEST(Cancel, ExpiredDeadlineTripsAndCancelWins) {
  cancel::Context Ctx;
  Ctx.DL = Deadline(1e-9);
  cancel::Scope S(&Ctx);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(cancel::interrupted(), ErrCode::DeadlineExceeded);
  EXPECT_THROW(cancel::checkPoint(), CancelledError);
  // When the requester also cancelled, the explicit ask wins the code.
  CancelToken Tok;
  Tok.requestCancel();
  cancel::Context Both;
  Both.DL = Deadline(1e-9);
  Both.Token = &Tok;
  cancel::Scope S2(&Both);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(cancel::interrupted(), ErrCode::Cancelled);
}

TEST(Cancel, NestedScopesHonorTheParentConstraint) {
  CancelToken Tok;
  cancel::Context Outer;
  Outer.Token = &Tok;
  cancel::Scope SO(&Outer);
  {
    // Inner scope has no constraints of its own; the chain walk still
    // observes the outer token (the tightest constraint wins).
    cancel::Context Inner;
    cancel::Scope SI(&Inner);
    EXPECT_EQ(cancel::interrupted(), ErrCode::Ok);
    Tok.requestCancel();
    EXPECT_EQ(cancel::interrupted(), ErrCode::Cancelled);
  }
  // Unwinding restores the outer scope, still cancelled.
  EXPECT_EQ(cancel::interrupted(), ErrCode::Cancelled);
}

TEST(Cancel, ScopePropagatesAcrossThreads) {
  CancelToken Tok;
  cancel::Context Ctx;
  Ctx.Token = &Tok;
  cancel::Scope S(&Ctx);
  Tok.requestCancel();
  ErrCode OnWorker = ErrCode::Ok;
  const cancel::Context *Req = cancel::current();
  std::thread T([&] {
    // thread_local state does not cross threads: re-install explicitly,
    // the way the parallel dependence analysis does.
    EXPECT_EQ(cancel::interrupted(), ErrCode::Ok);
    cancel::Scope Propagated(Req);
    OnWorker = cancel::interrupted();
  });
  T.join();
  EXPECT_EQ(OnWorker, ErrCode::Cancelled);
}

TEST(Cancel, SleepForReturnsEarlyWhenTripped) {
  {
    CancelToken Tok;
    cancel::Context Ctx;
    Ctx.Token = &Tok;
    cancel::Scope S(&Ctx);
    Tok.requestCancel();
    auto T0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(cancel::sleepFor(10000)); // would be 10s if not rescued
    double Waited = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - T0)
                        .count();
    EXPECT_LT(Waited, 5.0); // rescued promptly, nowhere near 10s
  }
  // An uninterrupted sleep (fresh scope, nothing cancelled) completes.
  CancelToken Fresh;
  cancel::Context Ctx2;
  Ctx2.Token = &Fresh;
  cancel::Scope S2(&Ctx2);
  EXPECT_TRUE(cancel::sleepFor(2));
}

// --- ThreadPool hardening (exception-safe workers, clean shutdown) -------

TEST(ThreadPool, ThrowingPostedJobDoesNotKillWorkers) {
  ThreadPool Pool(2);
  for (int I = 0; I < 4; ++I)
    Pool.post([] { throw std::runtime_error("posted boom"); });
  // Both workers must still be alive and draining the queue.
  std::atomic<int> Ran{0};
  std::vector<std::future<void>> Futs;
  for (int I = 0; I < 50; ++I)
    Futs.push_back(Pool.submit([&Ran] { ++Ran; }));
  for (auto &F : Futs)
    F.get();
  EXPECT_EQ(Ran.load(), 50);
}

TEST(ThreadPool, ThrowingPostedJobRunsInlineSafely) {
  ThreadPool Pool(1); // inline mode: post() runs on the caller
  EXPECT_NO_THROW(Pool.post([] { throw std::runtime_error("inline boom"); }));
  bool Ran = false;
  Pool.post([&] { Ran = true; });
  EXPECT_TRUE(Ran);
}

TEST(ThreadPool, ShutdownDrainRunsEveryQueuedJob) {
  std::atomic<int> Ran{0};
  std::vector<std::future<void>> Futs;
  {
    ThreadPool Pool(2);
    for (int I = 0; I < 32; ++I)
      Futs.push_back(Pool.submit([&Ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++Ran;
      }));
    Pool.shutdown(/*Drain=*/true);
    EXPECT_EQ(Ran.load(), 32); // drained before shutdown returned
  }
  for (auto &F : Futs)
    EXPECT_NO_THROW(F.get());
}

TEST(ThreadPool, ShutdownAbandonDropsQueuedJobs) {
  std::atomic<bool> Release{false};
  std::atomic<int> Started{0};
  std::atomic<int> Ran{0};
  ThreadPool Pool(2);
  // Park both workers so the counting jobs stay queued; wait until both
  // blockers are actually running so neither can itself be abandoned.
  std::vector<std::future<void>> Blockers;
  for (int I = 0; I < 2; ++I)
    Blockers.push_back(Pool.submit([&Release, &Started] {
      ++Started;
      while (!Release.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }));
  while (Started.load() < 2)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  std::vector<std::future<void>> Abandoned;
  for (int I = 0; I < 10; ++I)
    Abandoned.push_back(Pool.submit([&Ran] { ++Ran; }));
  // shutdown(false) clears the queue immediately, then joins; release the
  // blockers from the side so the join can finish.
  std::thread Unblock([&Release] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    Release = true;
  });
  Pool.shutdown(/*Drain=*/false);
  Unblock.join();
  EXPECT_EQ(Ran.load(), 0); // none of the queued jobs ran
  for (auto &F : Abandoned)
    EXPECT_THROW(F.get(), std::future_error); // broken promise
  for (auto &F : Blockers)
    EXPECT_NO_THROW(F.get());
}

TEST(ThreadPool, ShutdownIsIdempotentAndLateWorkRunsInline) {
  ThreadPool Pool(2);
  Pool.shutdown();
  Pool.shutdown(); // second call must be a no-op, not a crash
  bool Ran = false;
  auto Fut = Pool.submit([&Ran] {
    Ran = true;
    return 7;
  });
  EXPECT_TRUE(Ran); // ran inline on the caller
  EXPECT_EQ(Fut.get(), 7);
  Pool.post([] {}); // post after shutdown is equally safe
}

TEST(ThreadPool, ConcurrentShutdownIsSafe) {
  ThreadPool Pool(4);
  std::atomic<int> Ran{0};
  for (int I = 0; I < 64; ++I)
    Pool.post([&Ran] { ++Ran; });
  std::thread A([&Pool] { Pool.shutdown(true); });
  std::thread B([&Pool] { Pool.shutdown(true); });
  A.join();
  B.join();
  EXPECT_EQ(Ran.load(), 64);
}

} // namespace
