//===- tests/SupportTest.cpp - Rational / Matrix / Stats tests ------------===//

#include "support/Matrix.h"
#include "support/Rational.h"

#include <gtest/gtest.h>

using namespace akg;

namespace {

TEST(Rational, NormalizationAndArithmetic) {
  Rational A(6, 4);
  EXPECT_EQ(A.num(), 3);
  EXPECT_EQ(A.den(), 2);
  Rational B(-6, 4);
  EXPECT_EQ(B.num(), -3);
  EXPECT_EQ(B.den(), 2);
  Rational C(1, -2);
  EXPECT_EQ(C.num(), -1);
  EXPECT_EQ(C.den(), 2);
  EXPECT_EQ(A + B, Rational(0));
  EXPECT_EQ(A * Rational(2, 3), Rational(1));
  EXPECT_EQ(Rational(7, 2) / Rational(7), Rational(1, 2));
  EXPECT_EQ((A - Rational(1)).str(), "1/2");
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), Rational(3));
  EXPECT_EQ(Rational(7, 2).ceil(), Rational(4));
  EXPECT_EQ(Rational(-7, 2).floor(), Rational(-4));
  EXPECT_EQ(Rational(-7, 2).ceil(), Rational(-3));
  EXPECT_EQ(Rational(4).floor(), Rational(4));
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_GE(Rational(2, 4), Rational(1, 2));
  EXPECT_TRUE(Rational(5, 10) == Rational(1, 2));
}

TEST(Matrix, RankAndInverse) {
  Matrix M(2, 2);
  M.at(0, 0) = Rational(1);
  M.at(0, 1) = Rational(2);
  M.at(1, 0) = Rational(3);
  M.at(1, 1) = Rational(4);
  EXPECT_EQ(M.rank(), 2u);
  Matrix Inv = M.inverse();
  Matrix Id = M.multiply(Inv);
  for (unsigned I = 0; I < 2; ++I)
    for (unsigned J = 0; J < 2; ++J)
      EXPECT_EQ(Id.at(I, J), Rational(I == J ? 1 : 0));
}

TEST(Matrix, RankDeficiency) {
  Matrix M(2, 3);
  for (unsigned J = 0; J < 3; ++J) {
    M.at(0, J) = Rational(int64_t(J + 1));
    M.at(1, J) = Rational(int64_t(2 * (J + 1))); // 2x row 0
  }
  EXPECT_EQ(M.rank(), 1u);
}

TEST(Matrix, NullSpaceOrthogonality) {
  // Row space spanned by (1, 1, 0): null space is 2-dimensional and
  // orthogonal to it.
  Matrix M(1, 3);
  M.at(0, 0) = Rational(1);
  M.at(0, 1) = Rational(1);
  Matrix N = M.orthogonalComplement();
  EXPECT_EQ(N.rows(), 2u);
  for (unsigned R = 0; R < N.rows(); ++R) {
    Rational Dot;
    for (unsigned C = 0; C < 3; ++C)
      Dot += M.at(0, C) * N.at(R, C);
    EXPECT_EQ(Dot, Rational(0));
  }
}

TEST(Matrix, ApplyVector) {
  Matrix M(2, 2);
  M.at(0, 0) = Rational(2);
  M.at(1, 1) = Rational(3);
  auto R = M.apply({Rational(5), Rational(7)});
  EXPECT_EQ(R[0], Rational(10));
  EXPECT_EQ(R[1], Rational(21));
}

} // namespace
