//===- tests/TargetTest.cpp - CCE IR / sync / simulator tests -------------===//

#include "sim/Simulator.h"
#include "target/Sync.h"
#include "target/Vectorize.h"

#include <gtest/gtest.h>

using namespace akg;
using namespace akg::cce;
using namespace akg::ir;

namespace {

/// Builds a two-instruction kernel: MTE2 produces buffer "b", V consumes
/// it, inside a loop of N iterations.
Kernel producerConsumerKernel(int64_t Iters, bool DoubleBuffer) {
  Kernel K;
  auto Buf = std::make_shared<TensorDecl>();
  Buf->Name = "b";
  Buf->Shape = {1024};
  Buf->Type = DType::F16;
  K.Buffers.push_back({"b", sim::Buffer::UB, Buf, DoubleBuffer});
  InstrPtr Loop = makeLoop("i", intImm(0), intImm(Iters));
  Loop->DoubleBuffered = DoubleBuffer;
  InstrPtr Dma = makeDma(sim::Pipe::MTE2, nullptr, 2048, 1, "load");
  Dma->WriteBufs = {"b"};
  InstrPtr Op = makeCompute(InstrKind::VectorOp, sim::Pipe::V, nullptr,
                            28000, "vadd");
  Op->ReadBufs = {"b"};
  Op->WriteBufs = {"out"};
  Loop->Body.push_back(std::move(Dma));
  Loop->Body.push_back(std::move(Op));
  K.Body.push_back(std::move(Loop));
  return K;
}

TEST(Sync, InsertsFlagsForCrossPipeDependence) {
  Kernel K = producerConsumerKernel(4, false);
  SyncReport R = insertSynchronization(K, SyncStrategy::AkgDp);
  EXPECT_GE(R.FlagsInserted, 2u); // RAW + loop-carried WAR
  EXPECT_GT(countInstrs(K, InstrKind::SetFlag), 0u);
  EXPECT_GT(countInstrs(K, InstrKind::WaitFlag), 0u);
}

TEST(Sync, DoubleBufferingOverlapsIterations) {
  // With ping-pong (depth-2 WAR waits) the DMA of iteration i+1 overlaps
  // the compute of iteration i: total cycles must drop.
  Kernel Serial = producerConsumerKernel(64, false);
  insertSynchronization(Serial, SyncStrategy::AkgDp);
  Kernel Db = producerConsumerKernel(64, true);
  insertSynchronization(Db, SyncStrategy::AkgDp);
  const sim::MachineSpec &M = sim::MachineSpec::ascend910();
  sim::SimOptions SO;
  SO.Functional = false;
  int64_t CS = sim::simulate(Serial, M, nullptr, SO).Cycles;
  int64_t CD = sim::simulate(Db, M, nullptr, SO).Cycles;
  EXPECT_LT(CD, CS);
  // The overlap should approach max(dma, compute) per iteration.
  EXPECT_LT(double(CD), 0.8 * double(CS));
}

TEST(Sync, EmpiricalStrategySlowerThanDp) {
  Kernel Dp = producerConsumerKernel(64, true);
  insertSynchronization(Dp, SyncStrategy::AkgDp);
  Kernel Emp = producerConsumerKernel(64, true);
  insertSynchronization(Emp, SyncStrategy::TvmEmpirical);
  const sim::MachineSpec &M = sim::MachineSpec::ascend910();
  sim::SimOptions SO;
  SO.Functional = false;
  EXPECT_LE(sim::simulate(Dp, M, nullptr, SO).Cycles,
            sim::simulate(Emp, M, nullptr, SO).Cycles);
}

TEST(Sync, FullSerialInsertsBarriers) {
  Kernel K = producerConsumerKernel(4, false);
  SyncReport R = insertSynchronization(K, SyncStrategy::FullSerial);
  EXPECT_GT(R.BarriersInserted, 0u);
}

TEST(Simulator, PipesRunConcurrently) {
  // Two independent instructions on different pipes overlap in time.
  Kernel K;
  InstrPtr A = makeDma(sim::Pipe::MTE2, nullptr, 64000, 1, "");
  InstrPtr B = makeCompute(InstrKind::VectorOp, sim::Pipe::V, nullptr,
                           100000, "");
  K.Body.push_back(std::move(A));
  K.Body.push_back(std::move(B));
  const sim::MachineSpec &M = sim::MachineSpec::ascend910();
  sim::SimOptions SO;
  SO.Functional = false;
  sim::SimResult R = sim::simulate(K, M, nullptr, SO);
  int64_t DmaCost = M.GmLatency + 64000 / M.GmBandwidth;
  int64_t VecCost =
      M.VectorIssue + (100000 + M.VectorLanes - 1) / M.VectorLanes;
  EXPECT_EQ(R.Cycles, std::max(DmaCost, VecCost));
}

TEST(Simulator, WaitFlagSerializes) {
  Kernel K;
  InstrPtr A = makeDma(sim::Pipe::MTE2, nullptr, 64000, 1, "");
  K.Body.push_back(std::move(A));
  K.Body.push_back(makeSetFlag(sim::Pipe::MTE2, 0));
  K.Body.push_back(makeWaitFlag(sim::Pipe::V, sim::Pipe::MTE2, 0));
  InstrPtr B = makeCompute(InstrKind::VectorOp, sim::Pipe::V, nullptr,
                           100000, "");
  K.Body.push_back(std::move(B));
  const sim::MachineSpec &M = sim::MachineSpec::ascend910();
  sim::SimOptions SO;
  SO.Functional = false;
  sim::SimResult R = sim::simulate(K, M, nullptr, SO);
  int64_t DmaCost = M.GmLatency + 64000 / M.GmBandwidth;
  int64_t VecCost =
      M.VectorIssue + (100000 + M.VectorLanes - 1) / M.VectorLanes;
  EXPECT_EQ(R.Cycles, DmaCost + M.SyncCost + VecCost);
  EXPECT_GT(R.SyncStallCycles, 0);
}

TEST(Simulator, HandPrefetchReducesDmaLatency) {
  Kernel K;
  K.Body.push_back(makeDma(sim::Pipe::MTE2, nullptr, 640, 1, ""));
  Kernel P;
  P.HandPrefetched = true;
  P.Body.push_back(makeDma(sim::Pipe::MTE2, nullptr, 640, 1, ""));
  const sim::MachineSpec &M = sim::MachineSpec::ascend910();
  sim::SimOptions SO;
  SO.Functional = false;
  EXPECT_LT(sim::simulate(P, M, nullptr, SO).Cycles,
            sim::simulate(K, M, nullptr, SO).Cycles);
}

TEST(Vectorize, UnitStrideDetection) {
  Expr I = var("i"), J = var("j");
  EXPECT_TRUE(isUnitStride(I, "i"));
  EXPECT_TRUE(isUnitStride(add(mul(intImm(4), J), I), "i"));
  EXPECT_FALSE(isUnitStride(mul(intImm(2), I), "i"));
  EXPECT_FALSE(isUnitStride(J, "i"));
}

TEST(Vectorize, VectorizableLoop) {
  auto T = std::make_shared<TensorDecl>();
  T->Name = "t";
  T->Shape = {16, 64};
  T->Type = DType::F16;
  Stmt Body = makeProvide(T, {var("r"), var("i")},
                          add(tensorRead(T, {var("r"), var("i")}),
                              floatImm(1.0)));
  Stmt Good = makeFor("i", intImm(0), intImm(64), Body);
  EXPECT_TRUE(isVectorizableLoop(Good));
  // Stride-2 access is not vectorizable as a single intrinsic.
  Stmt Bad = makeFor("i", intImm(0), intImm(32),
                     makeProvide(T, {var("r"), mul(intImm(2), var("i"))},
                                 floatImm(0.0)));
  EXPECT_FALSE(isVectorizableLoop(Bad));
}

TEST(CceIr, PrintAndCapacityCheck) {
  Kernel K = producerConsumerKernel(2, false);
  std::string S = printKernel(K);
  EXPECT_NE(S.find("copy<PIPE_MTE2>"), std::string::npos);
  EXPECT_TRUE(
      checkBufferCapacities(K, sim::MachineSpec::ascend910()).empty());
  // Oversized LIVE allocation is rejected (capacity accounting is
  // liveness-aware: unreferenced buffers cost nothing).
  auto Big = std::make_shared<TensorDecl>();
  Big->Name = "big";
  Big->Shape = {1 << 20};
  Big->Type = DType::F32;
  K.Buffers.push_back({"big", sim::Buffer::UB, Big, false});
  EXPECT_TRUE(
      checkBufferCapacities(K, sim::MachineSpec::ascend910()).empty());
  InstrPtr Use = makeCompute(InstrKind::VectorOp, sim::Pipe::V, nullptr,
                             128, "touch big");
  Use->ReadBufs = {"big"};
  K.Body.push_back(std::move(Use));
  EXPECT_FALSE(
      checkBufferCapacities(K, sim::MachineSpec::ascend910()).empty());
}

} // namespace
