//===- tests/TransformsTest.cpp - Tiling + post-tiling fusion tests -------===//

#include "ir/Passes.h"
#include "schedule/AstGen.h"
#include "scheduler/Pluto.h"
#include "transforms/Fusion.h"
#include "transforms/Tiling.h"

#include <gtest/gtest.h>

using namespace akg;
using namespace akg::ir;
using namespace akg::sched;
using namespace akg::transforms;

namespace {

Module convChain(int64_t H, int64_t W, int64_t KH, int64_t KW) {
  Module M;
  Tensor A = M.placeholder("A", {H, W});
  Tensor B = M.placeholder("B", {KH, KW});
  Tensor A2 = M.compute("A2", {H, W}, [&](const std::vector<Expr> &I) {
    return add(tensorRead(A, {I[0], I[1]}), floatImm(0.5));
  });
  IterVar Kh = M.reduceAxis(KH, "kh");
  IterVar Kw = M.reduceAxis(KW, "kw");
  Tensor C = M.compute("C", {H - KH + 1, W - KW + 1},
                       [&](const std::vector<Expr> &I) {
                         Expr Prod =
                             mul(tensorRead(A2, {add(I[0], var("kh")),
                                                 add(I[1], var("kw"))}),
                                 tensorRead(B, {var("kh"), var("kw")}));
                         return reduce(ReduceKind::Sum, Prod, {Kh, Kw});
                       });
  M.compute("D", {H - KH + 1, W - KW + 1},
            [&](const std::vector<Expr> &I) {
              return call("relu", {tensorRead(C, {I[0], I[1]})}, DType::F16);
            });
  return M;
}

void checkFusedPipeline(Module &M, const std::vector<int64_t> &Tiles,
                        unsigned ExpectFusedProducers) {
  PolyProgram P = extractPolyProgram(M);
  std::vector<Dependence> Deps = computeDependences(P);
  ScheduleResult R = computeSchedule(P, Deps, SchedulerOptions{});
  ScheduleTree T = buildScheduledTree(P, R);
  FusionReport Rep = applyPostTilingFusion(T, P, Tiles);
  ASSERT_TRUE(Rep.Applied);
  EXPECT_EQ(Rep.FusedProducers, ExpectFusedProducers);

  Stmt Ast = generateAst(T, P);
  ASSERT_TRUE(Ast);
  BufferMap In;
  for (const Tensor &T2 : M.inputs())
    In[T2->Name] = makeTestData(T2->numElements(), 11 + T2->numElements());
  BufferMap Ref = evaluateModule(M, In);
  BufferMap Got = In;
  execStmt(Ast, Got);
  for (const Tensor &O : M.outputs()) {
    const auto &GV = Got[O->Name];
    const auto &RV = Ref[O->Name];
    ASSERT_EQ(GV.size(), RV.size());
    for (size_t I = 0; I < GV.size(); ++I)
      ASSERT_NEAR(GV[I], RV[I], 1e-3) << O->Name << "[" << I << "]";
  }
}

TEST(TileSpecLang, ParseAndPrint) {
  TilingPolicy Pol;
  std::string Err;
  ASSERT_TRUE(parseTilingPolicy("S_2: 32@L1, 32@L1  S_4: 64@UB", Pol, Err))
      << Err;
  ASSERT_EQ(Pol.PerStmt.size(), 2u);
  EXPECT_EQ(Pol.PerStmt[2].Entries[0].Size, 32);
  EXPECT_EQ(Pol.PerStmt[2].Entries[1].BufferName, "L1");
  EXPECT_EQ(Pol.sizesFor(4, 2), (std::vector<int64_t>{64, 1}));
  std::string Printed = printTilingPolicy(Pol);
  TilingPolicy Pol2;
  ASSERT_TRUE(parseTilingPolicy(Printed, Pol2, Err)) << Err;
  EXPECT_EQ(Pol2.PerStmt.size(), 2u);
}

TEST(TileSpecLang, RejectsMalformed) {
  TilingPolicy Pol;
  std::string Err;
  EXPECT_FALSE(parseTilingPolicy("S_1 32@L1", Pol, Err));
  EXPECT_FALSE(parseTilingPolicy("S_1: 32@Z9", Pol, Err));
  EXPECT_FALSE(parseTilingPolicy("S_1: 0@UB", Pol, Err));
  EXPECT_FALSE(parseTilingPolicy("", Pol, Err));
}

TEST(Tiling, TileBandSplitsRows) {
  Module M;
  Tensor A = M.placeholder("A", {64, 64});
  M.compute("B", {64, 64}, [&](const std::vector<Expr> &I) {
    return add(tensorRead(A, {I[0], I[1]}), floatImm(1.0));
  });
  PolyProgram P = extractPolyProgram(M);
  ScheduleResult R =
      computeSchedule(P, computeDependences(P), SchedulerOptions{});
  ScheduleTree T = buildScheduledTree(P, R);
  TreeNode *Band = findNode(T.root(), [](TreeNode *N) {
    return N->Kind == NodeKind::Band;
  });
  ASSERT_NE(Band, nullptr);
  TreeNode *Point = tileBand(Band, {16, 32});
  EXPECT_EQ(Band->Partial[0].Rows[0].Denom, 16);
  EXPECT_EQ(Band->Partial[0].Rows[1].Denom, 32);
  EXPECT_EQ(Point->Partial[0].Rows[0].Denom, 1);
  EXPECT_EQ(Point->bandWidth(), 2u);
}

TEST(PostTilingFusion, ConvChainLocalizesProducer) {
  // The running example: the bias-add producer (S0) must be re-scheduled
  // under the consumer tile with overlapped ranges; tensor A2 becomes
  // tile-local.
  Module M = convChain(20, 20, 3, 3);
  checkFusedPipeline(M, {8, 8}, 1);
}

TEST(PostTilingFusion, PartialTilesStayCorrect) {
  // 18x18 output with 8x8 tiles -> ragged partial tiles.
  Module M = convChain(20, 20, 3, 3);
  checkFusedPipeline(M, {7, 5}, 1);
}

TEST(PostTilingFusion, ChainOfThreeProducers) {
  Module M;
  Tensor A = M.placeholder("A", {24});
  Tensor B = M.compute("B", {24}, [&](const std::vector<Expr> &I) {
    return add(tensorRead(A, {I[0]}), floatImm(1.0));
  });
  Tensor C = M.compute("C", {22}, [&](const std::vector<Expr> &I) {
    return add(tensorRead(B, {add(I[0], intImm(2))}),
               tensorRead(B, {I[0]}));
  });
  IterVar K = M.reduceAxis(3, "k");
  M.compute("D", {20}, [&](const std::vector<Expr> &I) {
    return reduce(ReduceKind::Sum, tensorRead(C, {add(I[0], var("k"))}),
                  {K});
  });
  // B and C both become tile-local: 3 fused producer statements (B, C and
  // none other; D's init/update are the consumers).
  checkFusedPipeline(M, {5}, 2);
}

TEST(PostTilingFusion, OutputProducerIsNotSkipped) {
  // When the intermediate tensor escapes the module it cannot be localized.
  Module M;
  Tensor A = M.placeholder("A", {16});
  Tensor B = M.compute("B", {16}, [&](const std::vector<Expr> &I) {
    return add(tensorRead(A, {I[0]}), floatImm(1.0));
  });
  M.compute("C", {16}, [&](const std::vector<Expr> &I) {
    return mul(tensorRead(B, {I[0]}), floatImm(2.0));
  });
  // Both B and C escape? No: B is consumed by C only... but mark it an
  // output by reading it nowhere else; outputs() reports only C. With a
  // zero-distance chain the conservative clustering fuses B and C into one
  // cluster, so there is nothing to post-tile-fuse (FusedProducers == 0).
  checkFusedPipeline(M, {4}, 0);
}

TEST(PostTilingFusion, SkippedMarkSuppressesProducer) {
  Module M = convChain(16, 16, 3, 3);
  PolyProgram P = extractPolyProgram(M);
  ScheduleResult R =
      computeSchedule(P, computeDependences(P), SchedulerOptions{});
  ScheduleTree T = buildScheduledTree(P, R);
  applyPostTilingFusion(T, P, {8, 8});
  std::string S = T.str();
  EXPECT_NE(S.find("Mark{\"skipped\"}"), std::string::npos);
  EXPECT_NE(S.find("Mark{\"on_chip\"}"), std::string::npos);
  EXPECT_NE(S.find("Extension{S0}"), std::string::npos);
}

} // namespace
