//===- tests/VerifyTest.cpp - Differential verification subsystem ---------===//
//
// Self-tests for the verify subsystem (DESIGN.md 4e): the structured
// generator (determinism, theme coverage, size budgets), the module
// utilities it builds on (clone, static bounds proof, C++ emission), the
// config-matrix oracle, and the reducer. The centerpiece is the
// injected-bug test: a deliberate miscompile is planted through
// OracleOptions::MutateKernel, the oracle must flag it, and the reducer
// must shrink the module to a tiny repro — proving the harness would
// catch a real regression end to end.
//
//===----------------------------------------------------------------------===//

#include "ir/ModuleUtils.h"
#include "sim/Compare.h"
#include "sim/Simulator.h"
#include "verify/Generator.h"
#include "verify/Oracle.h"
#include "verify/Reducer.h"

#include <gtest/gtest.h>

#include <set>

using namespace akg;
using namespace akg::ir;

namespace {

// --- Generator ----------------------------------------------------------

TEST(Generator, DeterministicAcrossCalls) {
  for (uint64_t Seed : {0ull, 7ull, 42ull, 123ull}) {
    Module A = verify::generateModule(Seed);
    Module B = verify::generateModule(Seed);
    EXPECT_EQ(emitModuleBuilder(A), emitModuleBuilder(B)) << "seed " << Seed;
    EXPECT_EQ(verify::describeModule(Seed, A), verify::describeModule(Seed, B));
  }
}

TEST(Generator, SeedRangeCoversEveryTheme) {
  std::set<verify::Theme> Seen;
  for (uint64_t S = 0; S < 7; ++S)
    Seen.insert(verify::themeForSeed(S));
  EXPECT_EQ(Seen.size(), 7u);
}

TEST(Generator, RespectsSizeBudgets) {
  verify::GenOptions Opts;
  Opts.MaxTensorElems = 512;
  Opts.MaxTotalElems = 2048;
  for (uint64_t Seed = 0; Seed < 28; ++Seed) {
    Module M = verify::generateModule(Seed, Opts);
    int64_t Total = 0;
    for (const Tensor &T : M.allTensors()) {
      EXPECT_LE(T->numElements(), Opts.MaxTensorElems)
          << "seed " << Seed << " tensor " << T->Name;
      Total += T->numElements();
    }
    EXPECT_LE(Total, Opts.MaxTotalElems) << "seed " << Seed;
    EXPECT_GE(M.ops().size(), 1u);
    // Everything the generator makes must be statically in bounds — the
    // evaluator would abort on an OOB read otherwise.
    EXPECT_EQ(checkModuleBounds(M), "") << verify::describeModule(Seed, M);
  }
}

// --- Module utilities ---------------------------------------------------

TEST(ModuleUtils, CloneEvaluatesIdentically) {
  Module M = verify::generateModule(3); // conv theme: the richest bodies
  Module C = cloneModule(M);
  BufferMap In = sim::makeModuleInputs(M);
  BufferMap RefM = evaluateModule(M, In);
  BufferMap RefC = evaluateModule(C, In);
  ASSERT_EQ(RefM.size(), RefC.size());
  for (const auto &[Name, Vals] : RefM) {
    ASSERT_TRUE(RefC.count(Name)) << Name;
    EXPECT_EQ(Vals, RefC[Name]) << Name;
  }
}

TEST(ModuleUtils, BoundsCheckerAcceptsGuardedPadding) {
  // The conv padding idiom: reads shifted out of range but guarded by the
  // select condition. The checker must refine intervals through the guard.
  Module M;
  Tensor In = M.placeholder("x", {4, 4});
  M.compute("pad", {4, 4}, [&](const std::vector<Expr> &Ix) {
    Expr H = sub(Ix[0], intImm(1));
    Expr G = binary(ExprKind::And, cmp(ExprKind::CmpLE, intImm(0), H),
                    cmp(ExprKind::CmpLT, H, intImm(4)));
    return select(G, tensorRead(In, {H, Ix[1]}), floatImm(0.0));
  });
  EXPECT_EQ(checkModuleBounds(M), "");
}

TEST(ModuleUtils, BoundsCheckerFlagsOutOfRangeRead) {
  Module M;
  Tensor In = M.placeholder("x", {4, 4});
  M.compute("shift", {4, 4}, [&](const std::vector<Expr> &Ix) {
    return tensorRead(In, {add(Ix[0], intImm(1)), Ix[1]}); // reads row 4
  });
  EXPECT_NE(checkModuleBounds(M), "");
}

TEST(ModuleUtils, EmitterRendersBuilderCalls) {
  Module M = verify::generateModule(1); // matmul theme
  std::string Code = emitModuleBuilder(M);
  EXPECT_NE(Code.find("ir::Module M;"), std::string::npos);
  EXPECT_NE(Code.find("M.placeholder("), std::string::npos);
  EXPECT_NE(Code.find("M.compute("), std::string::npos);
  EXPECT_NE(Code.find("M.reduceAxis("), std::string::npos); // matmul k-axis
}

// --- Oracle -------------------------------------------------------------

TEST(Oracle, CleanModulePassesQuickMatrix) {
  Module M = verify::generateModule(0);
  verify::OracleOptions OO;
  OO.Level = verify::MatrixLevel::Quick;
  verify::OracleReport Rep = verify::runOracle(M, OO);
  EXPECT_TRUE(Rep.Pass) << Rep.str();
  EXPECT_EQ(Rep.firstFailure(), "");
}

TEST(Oracle, FullMatrixSweepsDegradationRungs) {
  Module M = verify::generateModule(0);
  auto Cfgs = verify::oracleConfigs(M, verify::MatrixLevel::Full);
  std::set<std::string> Names;
  for (const auto &[Name, O] : Cfgs)
    Names.insert(Name);
  for (const char *Want :
       {"default", "nofuse", "fail_scheduler", "fail_tiling", "fail_sync"})
    EXPECT_TRUE(Names.count(Want)) << Want;
}

// --- Dynamic-shape differential configs ---------------------------------

TEST(Oracle, DynShapeThemeRunsDifferentialConfigs) {
  // The explicit DynShape theme (not in the Auto cycle) must trigger both
  // dynshape oracle configs, and over a handful of seeds at least one
  // module must actually take the bucketed path (empty Detail) rather
  // than all falling back to per-shape compiles.
  verify::GenOptions G;
  G.ThemeSel = verify::Theme::DynShape;
  verify::OracleOptions OO;
  OO.Level = verify::MatrixLevel::Quick;
  unsigned Bucketed = 0;
  for (uint64_t Seed = 0; Seed < 6; ++Seed) {
    Module M = verify::generateModule(Seed, G);
    ASSERT_TRUE(hasDynamicDims(M)) << "seed " << Seed;
    EXPECT_NE(verify::describeModule(Seed, M).find("theme=dynshape"),
              std::string::npos);
    verify::OracleReport Rep = verify::runOracle(M, OO);
    EXPECT_TRUE(Rep.Pass) << "seed " << Seed << "\n" << Rep.str();
    bool SawBucketed = false, SawKill = false;
    for (const verify::ConfigOutcome &O : Rep.Outcomes) {
      if (O.Config == "dynshape_bucketed") {
        SawBucketed = true;
        if (O.Detail.empty())
          ++Bucketed;
      } else if (O.Config == "dynshape_killswitch") {
        SawKill = true;
      }
    }
    EXPECT_TRUE(SawBucketed) << "seed " << Seed;
    EXPECT_TRUE(SawKill) << "seed " << Seed;
  }
  EXPECT_GT(Bucketed, 0u) << "no dynshape seed took the bucketed path";
}

TEST(Oracle, StaticModuleSkipsDynShapeConfigs) {
  Module M = verify::generateModule(0);
  verify::OracleOptions OO;
  OO.Level = verify::MatrixLevel::Quick;
  verify::OracleReport Rep = verify::runOracle(M, OO);
  EXPECT_TRUE(Rep.Pass) << Rep.str();
  for (const verify::ConfigOutcome &O : Rep.Outcomes)
    EXPECT_EQ(O.Config.find("dynshape"), std::string::npos) << O.Config;
}

TEST(Generator, DynShapeThemeIsDeterministicAndBudgeted) {
  verify::GenOptions G;
  G.ThemeSel = verify::Theme::DynShape;
  for (uint64_t Seed : {0ull, 11ull, 42ull}) {
    Module A = verify::generateModule(Seed, G);
    Module B = verify::generateModule(Seed, G);
    EXPECT_EQ(emitModuleBuilder(A), emitModuleBuilder(B)) << "seed " << Seed;
    for (const Tensor &T : A.allTensors())
      EXPECT_LE(T->numElements(), G.MaxTensorElems) << T->Name;
    EXPECT_EQ(checkModuleBounds(A), "") << verify::describeModule(Seed, A);
  }
}

// --- The injected-bug end-to-end test -----------------------------------

/// Deliberate miscompile: drop the last compute instruction carrying a
/// functional payload from the kernel, but only in the "default" config so
/// the differential matrix disagrees. The consumer's output buffer is
/// never produced, which the oracle must flag as a mismatch.
void dropLastCompute(const ir::Module &, const std::string &Config,
                     cce::Kernel &K) {
  if (Config != "default")
    return;
  for (auto It = K.Body.rbegin(); It != K.Body.rend(); ++It) {
    if ((*It)->Sem) {
      K.Body.erase(std::next(It).base());
      return;
    }
  }
}

TEST(InjectedBug, OracleFlagsAndReducerShrinks) {
  // A multi-op module so the reducer has real work to do.
  verify::GenOptions G;
  G.MinOps = 4;
  Module M = verify::generateModule(5, G); // chain1d: a long op chain
  ASSERT_GE(M.ops().size(), 3u);

  verify::OracleOptions OO;
  OO.Level = verify::MatrixLevel::Quick;
  OO.MutateKernel = dropLastCompute;

  verify::OracleReport Rep = verify::runOracle(M, OO);
  ASSERT_FALSE(Rep.Pass) << "oracle must flag the injected miscompile";
  EXPECT_NE(Rep.firstFailure().find("default"), std::string::npos)
      << Rep.firstFailure();

  // Sanity: without the mutation the module is clean.
  verify::OracleOptions Clean = OO;
  Clean.MutateKernel = nullptr;
  EXPECT_TRUE(verify::runOracle(M, Clean).Pass);

  verify::ReduceResult Red = verify::reduceModule(
      M, [&](const Module &Cand) { return !verify::runOracle(Cand, OO).Pass; });
  EXPECT_LE(Red.Reduced.ops().size(), 3u)
      << "reducer left " << Red.Reduced.ops().size() << " ops:\n"
      << Red.CppTestCase;
  EXPECT_GT(Red.MutationsKept, 0u);
  // The fixpoint still fails and still emits a usable repro.
  EXPECT_FALSE(verify::runOracle(Red.Reduced, OO).Pass);
  EXPECT_NE(Red.CppTestCase.find("M.compute("), std::string::npos);
  std::string Line = verify::corpusLine(5, "injected");
  EXPECT_EQ(Line, "5 # injected");
}

// --- Simulator truncation guard -----------------------------------------

TEST(SimTruncation, TinyBudgetSetsTruncatedWithoutCrashing) {
  Module M = verify::generateModule(0);
  CompileResult R = compileWithAkg(M, AkgOptions{}, "trunc");
  BufferMap Bufs = sim::makeModuleInputs(M);
  sim::SimOptions SO;
  SO.Functional = true;
  SO.MaxDynamicInstrs = 3; // far below any real kernel
  sim::SimResult SR =
      sim::simulate(R.Kernel, sim::MachineSpec::ascend910(), &Bufs, SO);
  EXPECT_TRUE(SR.Truncated);
  EXPECT_GT(SR.Cycles, 0) << "Cycles stays a lower bound, not garbage";

  // The comparison plumbing must surface truncation as a failure, not as
  // a spurious "matches within tolerance".
  sim::SimResult SR2;
  // (diffKernelAgainstReference runs with the default instruction budget;
  // truncation cannot trigger there for these tiny modules.)
  sim::FunctionalDiff D = sim::diffKernelAgainstReference(
      R.Kernel, M, sim::MachineSpec::ascend910(), 1, &SR2);
  EXPECT_FALSE(SR2.Truncated);
  EXPECT_TRUE(D.within(2e-2)) << D.str();
}

} // namespace
