//===- tools/akg-chaos.cpp - Chaos-testing driver -------------------------===//
//
// Drives the hardened CompileService under a seeded chaos spec and
// reports what the hardening did: per-request outcomes, latency
// percentiles, shed/degrade counts, retries, quarantine arms, and cache
// leader failures. The spec comes from --spec or AKG_CHAOS (identical
// grammar; --spec wins), so the same scenario replays bit-identically
// from its seed:
//
//   akg-chaos --spec seed=42,fault=0.1,delay=0.1:20 --requests 50 \
//             --threads 4 --deadline-ms 2000
//   akg-chaos --explain --spec seed=42,fault=0.3   # decisions only
//
// The workload is the Fig-13 ResNet-50 subgraph stream (one request per
// layer occurrence), capped by --requests. Exit code 1 on a hung request
// (a request that neither completed nor was shed) or a malformed spec.
//
//===----------------------------------------------------------------------===//

#include "akg/CompileService.h"
#include "graph/Networks.h"
#include "support/Env.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

using namespace akg;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: akg-chaos [options]\n"
      "  --spec <s>         chaos spec (default: AKG_CHAOS), grammar:\n"
      "                     seed=N,fault=P,transient=P,delay=P[:ms],"
      "hang=P[:ms]\n"
      "  --requests <n>     request count (default 50)\n"
      "  --threads <n>      service workers (default 4)\n"
      "  --deadline-ms <d>  per-request hard deadline (default 2000)\n"
      "  --queue-depth <n>  admission queue bound (default AKG_QUEUE_DEPTH)\n"
      "  --policy <p>       shed policy: reject | degrade\n"
      "  --explain          print the seeded decisions, compile nothing\n");
}

double percentile(const std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t I = static_cast<size_t>(P * double(Sorted.size() - 1) + 0.5);
  return Sorted[std::min(I, Sorted.size() - 1)];
}

const char *actionName(ChaosAction::Kind K) {
  switch (K) {
  case ChaosAction::Kind::None:
    return "none";
  case ChaosAction::Kind::Fault:
    return "fault";
  case ChaosAction::Kind::Delay:
    return "delay";
  case ChaosAction::Kind::Hang:
    return "hang";
  }
  return "?";
}

} // namespace

int main(int Argc, char **Argv) {
  std::string SpecText = env::get("AKG_CHAOS").value_or("");
  unsigned Requests = 50, Threads = 4;
  double DeadlineMs = 2000;
  unsigned QueueDepth = 0;
  std::string Policy;
  bool Explain = false;

  for (int I = 1; I < Argc; ++I) {
    auto Val = [&](const char *Flag) -> const char * {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "%s needs a value\n", Flag);
        usage();
        std::exit(1);
      }
      return Argv[++I];
    };
    if (!std::strcmp(Argv[I], "--spec"))
      SpecText = Val("--spec");
    else if (!std::strcmp(Argv[I], "--requests"))
      Requests = static_cast<unsigned>(std::atoi(Val("--requests")));
    else if (!std::strcmp(Argv[I], "--threads"))
      Threads = static_cast<unsigned>(std::atoi(Val("--threads")));
    else if (!std::strcmp(Argv[I], "--deadline-ms"))
      DeadlineMs = std::atof(Val("--deadline-ms"));
    else if (!std::strcmp(Argv[I], "--queue-depth"))
      QueueDepth = static_cast<unsigned>(std::atoi(Val("--queue-depth")));
    else if (!std::strcmp(Argv[I], "--policy"))
      Policy = Val("--policy");
    else if (!std::strcmp(Argv[I], "--explain"))
      Explain = true;
    else {
      usage();
      return 1;
    }
  }

  std::string Err;
  std::optional<ChaosSpec> Spec = ChaosSpec::parse(SpecText, &Err);
  if (!Spec) {
    std::fprintf(stderr, "bad chaos spec '%s': %s\n", SpecText.c_str(),
                 Err.c_str());
    return 1;
  }

  graph::NetworkModel Net = graph::buildResNet50();
  AkgOptions Base;
  Base.RequestDeadlineMs = DeadlineMs;
  std::vector<CompileJob> Jobs =
      networkCompileJobs(Net, Base, /*PerOccurrence=*/true);
  if (Jobs.size() > Requests)
    Jobs.resize(Requests);

  if (Explain) {
    std::printf("%-28s %-8s %s\n", "request", "action", "detail");
    for (const CompileJob &J : Jobs) {
      ChaosAction A = chaosDecide(*Spec, J.Name, 0);
      std::string Detail;
      if (A.K == ChaosAction::Kind::Fault)
        Detail = A.Transient ? "transient (Unavailable)"
                             : "deterministic (FaultInjected)";
      else if (A.K != ChaosAction::Kind::None)
        Detail = std::to_string(A.Ms) + " ms";
      std::printf("%-28s %-8s %s\n", J.Name.c_str(), actionName(A.K),
                  Detail.c_str());
    }
    return 0;
  }

  KernelCache Cache;
  CompileService::Options SO;
  SO.Threads = Threads;
  SO.QueueDepth = QueueDepth;
  SO.Cache = &Cache;
  SO.Chaos = Spec->enabled() ? std::optional<ChaosSpec>(*Spec)
                             : std::nullopt;
  if (Policy == "reject")
    SO.Shed = ShedPolicy::Reject;
  else if (Policy == "degrade")
    SO.Shed = ShedPolicy::Degrade;
  else if (!Policy.empty()) {
    std::fprintf(stderr, "unknown --policy '%s'\n", Policy.c_str());
    return 1;
  }
  CompileService Svc(SO);

  std::printf("chaos run: %zu requests, %u workers, deadline %.0f ms, "
              "spec '%s'\n",
              Jobs.size(), Svc.threads(), DeadlineMs, SpecText.c_str());
  std::vector<CompileResult> Res = Svc.compileAll(Jobs);

  std::vector<double> Lat;
  std::map<std::string, int64_t> Outcomes;
  for (const CompileResult &R : Res) {
    Lat.push_back(R.ServiceSeconds * 1e3);
    Outcomes[R.Outcome.isOk() ? "ok" : errCodeName(R.Outcome.code())]++;
  }
  std::sort(Lat.begin(), Lat.end());

  ServiceStats SS = Svc.stats();
  QuarantineStats QS = Svc.quarantine().stats();
  KernelCacheStats CS = Cache.stats();
  int64_t Accounted = SS.Completed + SS.Shed + SS.Degraded;

  std::printf("outcomes:");
  for (const auto &[Name, N] : Outcomes)
    std::printf("  %s=%lld", Name.c_str(), (long long)N);
  std::printf("\nlatency ms: p50 %.2f  p99 %.2f  p999 %.2f  max %.2f\n",
              percentile(Lat, 0.50), percentile(Lat, 0.99),
              percentile(Lat, 0.999), Lat.empty() ? 0 : Lat.back());
  std::printf("service: %lld submitted, %lld completed, %lld shed, %lld "
              "degraded, %lld retries\n",
              (long long)SS.Submitted, (long long)SS.Completed,
              (long long)SS.Shed, (long long)SS.Degraded,
              (long long)SS.Retries);
  std::printf("chaos: %lld faults, %lld delays, %lld hangs\n",
              (long long)SS.FaultsInjected, (long long)SS.DelaysInjected,
              (long long)SS.HangsInjected);
  std::printf("quarantine: %lld armed, %lld fast-fails; cache: %lld "
              "leader-failed\n",
              (long long)QS.Armed, (long long)QS.FastFails,
              (long long)CS.LeaderFailed);

  if (Accounted != SS.Submitted) {
    std::fprintf(stderr, "FAIL: %lld requests unaccounted for (hung?)\n",
                 (long long)(SS.Submitted - Accounted));
    return 1;
  }
  std::printf("zero hung requests\n");
  return 0;
}
