//===- tools/akg-compile.cpp - One-shot compile CLI -----------------------===//
//
// Compiles a single named operator through the full AKG pipeline and
// prints what happened: tile sizes, degradation ladder, and the per-pass
// compile trace summary. The library honors AKG_TRACE / AKG_FAIL_STAGE /
// AKG_STATS as usual, which makes this the driver for the CI trace-schema
// check (tools/check_trace.py):
//
//   AKG_TRACE=trace.jsonl akg-compile --op matmul
//   AKG_FAIL_STAGE=storage AKG_TRACE=trace.jsonl akg-compile --op conv
//
//===----------------------------------------------------------------------===//

#include "akg/Compiler.h"
#include "graph/Ops.h"
#include "sim/Simulator.h"
#include "target/CceIr.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace akg;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: akg-compile [--op matmul|conv|add|bn] [--dump-kernel]\n"
               "\n"
               "Compiles one Fig 9 operator with the AKG pipeline and prints\n"
               "the degradation report and compile trace. Environment:\n"
               "  AKG_TRACE=<path|->   dump the trace (JSONL / stderr text)\n"
               "  AKG_FAIL_STAGE=<s>   force stage <s> onto its fallback\n");
}

graph::ModulePtr makeOp(const std::string &Op) {
  if (Op == "matmul")
    return graph::makeMatmul(512, 512, 512);
  if (Op == "conv")
    return graph::makeConv(16, 32, 14, 14, 32, 3, 3, 1, 1);
  if (Op == "add")
    return graph::makeTensorAdd({16, 48, 24, 24});
  if (Op == "bn")
    return graph::makeBnReduce(16, 32, 14, 14);
  return nullptr;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Op = "matmul";
  bool DumpKernel = false;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--op") && I + 1 < Argc) {
      Op = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--dump-kernel")) {
      DumpKernel = true;
    } else {
      usage();
      return 2;
    }
  }
  graph::ModulePtr M = makeOp(Op);
  if (!M) {
    std::fprintf(stderr, "akg-compile: unknown op '%s'\n", Op.c_str());
    usage();
    return 2;
  }

  CompileResult R = compileWithAkg(*M, AkgOptions(), Op);

  std::string Tiles;
  for (int64_t T : R.TileSizes)
    Tiles += (Tiles.empty() ? "" : " ") + std::to_string(T);
  std::printf("akg-compile: op=%s tiles=[%s] fused_producers=%u\n", Op.c_str(),
              Tiles.c_str(), R.FusedProducers);
  if (R.Degradation.Steps.empty())
    std::printf("degradation: clean compile\n");
  else
    std::printf("%s", R.Degradation.str().c_str());
  std::printf("%s", R.Trace.str().c_str());
  if (DumpKernel)
    std::printf("%s", cce::printKernel(R.Kernel).c_str());
  return 0;
}
