//===- tools/akg-compile.cpp - One-shot compile CLI -----------------------===//
//
// Compiles a single named operator through the full AKG pipeline and
// prints what happened: tile sizes, degradation ladder, and the per-pass
// compile trace summary. The library honors AKG_TRACE / AKG_FAIL_STAGE /
// AKG_STATS as usual, which makes this the driver for the CI trace-schema
// check (tools/check_trace.py):
//
//   AKG_TRACE=trace.jsonl akg-compile --op matmul
//   AKG_FAIL_STAGE=storage AKG_TRACE=trace.jsonl akg-compile --op conv
//
// With --json <file|-> the input is a composite-subgraph JSON payload
// (src/composite) instead of a built-in op: the payload is parsed,
// normalized (transform-op elimination), and compiled. Malformed payloads
// exit 1 after printing every structured diagnostic; they never crash the
// driver.
//
//   akg-compile --json fused_subgraph.json --dump-kernel
//   cat payload.json | akg-compile --json -
//
//===----------------------------------------------------------------------===//

#include "akg/Compiler.h"
#include "composite/Composite.h"
#include "graph/Ops.h"
#include "sim/Simulator.h"
#include "target/CceIr.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace akg;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: akg-compile [--op matmul|conv|add|bn] [--json <file|->]\n"
      "                   [--target cce|simt] [--dump-kernel]\n"
      "                   [--dump-normalized] [--help]\n"
      "\n"
      "Compiles one Fig 9 operator (--op) or a composite-subgraph JSON\n"
      "payload (--json, '-' reads stdin) with the AKG pipeline and prints\n"
      "the degradation report and compile trace. A top-level JSON array\n"
      "is a batch: every entry compiles, any failure exits 1.\n"
      "--target selects the backend (default cce; a JSON payload's own\n"
      "\"target\" key overrides it per entry). --dump-normalized prints\n"
      "the canonical payload after transform-op elimination. Environment:\n"
      "  AKG_TRACE=<path|->   dump the trace (JSONL / stderr text)\n"
      "  AKG_FAIL_STAGE=<s>   force stage <s> onto its fallback\n"
      "  AKG_TARGET=<t>       override the compile target (cce|simt)\n");
}

graph::ModulePtr makeOp(const std::string &Op) {
  if (Op == "matmul")
    return graph::makeMatmul(512, 512, 512);
  if (Op == "conv")
    return graph::makeConv(16, 32, 14, 14, 32, 3, 3, 1, 1);
  if (Op == "add")
    return graph::makeTensorAdd({16, 48, 24, 24});
  if (Op == "bn")
    return graph::makeBnReduce(16, 32, 14, 14);
  return nullptr;
}

bool readInput(const std::string &Path, std::string &Out) {
  if (Path == "-") {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    Out = SS.str();
    return true;
  }
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

void printResult(const CompileResult &R, const std::string &Name,
                 bool DumpKernel) {
  std::string Tiles;
  for (int64_t T : R.TileSizes)
    Tiles += (Tiles.empty() ? "" : " ") + std::to_string(T);
  std::printf("akg-compile: op=%s tiles=[%s] fused_producers=%u\n",
              Name.c_str(), Tiles.c_str(), R.FusedProducers);
  if (R.Degradation.Steps.empty())
    std::printf("degradation: clean compile\n");
  else
    std::printf("%s", R.Degradation.str().c_str());
  std::printf("%s", R.Trace.str().c_str());
  if (DumpKernel)
    std::printf("%s", cce::printKernel(R.Kernel).c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Op = "matmul";
  std::string JsonPath;
  bool DumpKernel = false, DumpNormalized = false;
  AkgOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--op") && I + 1 < Argc) {
      Op = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--json") && I + 1 < Argc) {
      JsonPath = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--target") && I + 1 < Argc) {
      if (!sim::parseTargetName(Argv[++I], Opts.Target)) {
        std::fprintf(stderr, "akg-compile: unknown target '%s'\n", Argv[I]);
        usage();
        return 2;
      }
    } else if (!std::strcmp(Argv[I], "--dump-kernel")) {
      DumpKernel = true;
    } else if (!std::strcmp(Argv[I], "--dump-normalized")) {
      DumpNormalized = true;
    } else if (!std::strcmp(Argv[I], "--help") || !std::strcmp(Argv[I], "-h")) {
      usage();
      return 0;
    } else {
      usage();
      return 2;
    }
  }

  if (!JsonPath.empty()) {
    std::string Text;
    if (!readInput(JsonPath, Text)) {
      std::fprintf(stderr, "akg-compile: cannot read '%s'\n",
                   JsonPath.c_str());
      return 2;
    }
    // A top-level array is a batch: compile every entry, report each one,
    // and fail the run if any entry fails.
    composite::BatchSplit B = composite::splitBatchPayload(Text);
    if (!B.ok()) {
      std::fprintf(stderr, "akg-compile: batch payload rejected (%s)\n",
                   errCodeName(B.Outcome.code()));
      for (const composite::Diag &D : B.Diags)
        std::fprintf(stderr, "  %s\n", D.str().c_str());
      return 1;
    }
    std::vector<std::string> Entries =
        B.IsBatch ? std::move(B.Entries) : std::vector<std::string>{Text};
    if (B.IsBatch)
      std::printf("batch: %zu entries\n", Entries.size());
    int Failed = 0;
    for (size_t I = 0; I < Entries.size(); ++I) {
      composite::FrontendResult F = composite::loadComposite(Entries[I]);
      if (!F.ok()) {
        std::fprintf(stderr,
                     "akg-compile: composite payload%s rejected (%s)\n",
                     B.IsBatch ? (" [" + std::to_string(I) + "]").c_str()
                               : "",
                     errCodeName(F.Outcome.code()));
        for (const composite::Diag &D : F.Diags)
          std::fprintf(stderr, "  %s\n", D.str().c_str());
        ++Failed;
        continue;
      }
      std::printf(
          "composite: kernel=%s ops=%zu transform_ops_eliminated=%u\n",
          F.KernelName.c_str(), F.Normalized.Ops.size(),
          F.TransformOpsEliminated);
      if (DumpNormalized)
        std::printf(
            "%s\n", composite::serializeComposite(F.Normalized, true).c_str());
      // The payload's own "target" key wins over --target, mirroring the
      // compile service's submitJson.
      AkgOptions EntryOpts = Opts;
      if (!F.Normalized.Target.empty())
        sim::parseTargetName(F.Normalized.Target, EntryOpts.Target);
      CompileResult R = compileWithAkg(*F.Mod, EntryOpts, F.KernelName);
      printResult(R, F.KernelName, DumpKernel);
      if (!R.Outcome.isOk())
        ++Failed;
    }
    return Failed ? 1 : 0;
  }

  graph::ModulePtr M = makeOp(Op);
  if (!M) {
    std::fprintf(stderr, "akg-compile: unknown op '%s'\n", Op.c_str());
    usage();
    return 2;
  }

  CompileResult R = compileWithAkg(*M, Opts, Op);
  printResult(R, Op, DumpKernel);
  return 0;
}
