//===- tools/akg-fuzz.cpp - Differential fuzzing driver -------------------===//
//
// Command-line front end of the verify subsystem (DESIGN.md 4e): sweeps a
// seed range through the structured module generator, runs the
// config-matrix oracle on every module, and on a failure invokes the
// automatic reducer and writes a ready-to-paste C++ repro plus a corpus
// line. Exit code 0 = all seeds clean, 1 = at least one mismatch.
//
//   akg-fuzz --seeds 200                 # seeds 0..199, full matrix
//   akg-fuzz --start 1000 --seeds 50     # seeds 1000..1049
//   akg-fuzz --seed 42 --dump            # one seed, print module + report
//   akg-fuzz --seeds 20 --matrix quick   # PR-smoke subset
//   akg-fuzz --seeds 30 --dynshape       # dynamic-shape theme only
//
// Environment: AKG_FUZZ_SEEDS / AKG_FUZZ_START / AKG_FUZZ_MATRIX /
// AKG_FUZZ_DYNSHAPE provide defaults for CI wrappers; AKG_THREADS sizes
// the determinism sweep.
//
//===----------------------------------------------------------------------===//

#include "akg/CompileService.h"
#include "ir/ModuleUtils.h"
#include "support/Env.h"
#include "verify/Generator.h"
#include "verify/Oracle.h"
#include "verify/Reducer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace akg;

namespace {

struct Args {
  uint64_t Start = 0;
  uint64_t Seeds = 100;
  int64_t OneSeed = -1;
  verify::MatrixLevel Level = verify::MatrixLevel::Full;
  std::string ReproDir = ".";
  std::string CorpusFile; // append corpus lines here when set
  bool Dump = false;
  bool KeepGoing = false; // continue after the first failing seed
  /// Generate every seed under Theme::DynShape (not part of the Auto
  /// cycle) so the dynshape_bucketed/killswitch oracle configs fire.
  bool DynShape = false;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: akg-fuzz [--seeds N] [--start S] [--seed S] "
      "[--matrix full|quick]\n"
      "                [--repro-dir DIR] [--corpus FILE] [--dump] "
      "[--keep-going]\n"
      "                [--dynshape]\n");
}

bool parseArgs(int Argc, char **Argv, Args &A) {
  A.Seeds = uint64_t(env::getInt("AKG_FUZZ_SEEDS", int64_t(A.Seeds)));
  A.Start = uint64_t(env::getInt("AKG_FUZZ_START", 0));
  if (auto M = env::get("AKG_FUZZ_MATRIX"))
    A.Level = (*M == "quick") ? verify::MatrixLevel::Quick
                              : verify::MatrixLevel::Full;
  A.DynShape = env::getInt("AKG_FUZZ_DYNSHAPE", 0) != 0;
  for (int I = 1; I < Argc; ++I) {
    std::string S = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (S == "--seeds") {
      const char *V = Next();
      if (!V)
        return false;
      A.Seeds = std::strtoull(V, nullptr, 10);
    } else if (S == "--start") {
      const char *V = Next();
      if (!V)
        return false;
      A.Start = std::strtoull(V, nullptr, 10);
    } else if (S == "--seed") {
      const char *V = Next();
      if (!V)
        return false;
      A.OneSeed = std::strtoll(V, nullptr, 10);
    } else if (S == "--matrix") {
      const char *V = Next();
      if (!V)
        return false;
      if (std::strcmp(V, "quick") == 0)
        A.Level = verify::MatrixLevel::Quick;
      else if (std::strcmp(V, "full") == 0)
        A.Level = verify::MatrixLevel::Full;
      else
        return false;
    } else if (S == "--repro-dir") {
      const char *V = Next();
      if (!V)
        return false;
      A.ReproDir = V;
    } else if (S == "--corpus") {
      const char *V = Next();
      if (!V)
        return false;
      A.CorpusFile = V;
    } else if (S == "--dynshape") {
      A.DynShape = true;
    } else if (S == "--dump") {
      A.Dump = true;
    } else if (S == "--keep-going") {
      A.KeepGoing = true;
    } else {
      usage();
      return false;
    }
  }
  return true;
}

/// Writes the reduced repro as a self-contained gtest case.
void writeRepro(const Args &A, uint64_t Seed, const verify::OracleReport &Rep,
                const verify::ReduceResult &Red) {
  std::string Path =
      A.ReproDir + "/akg_fuzz_repro_" + std::to_string(Seed) + ".cpp";
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return;
  }
  std::fprintf(F,
               "// Reduced repro for akg-fuzz seed %llu.\n"
               "// First failure: %s\n"
               "// Paste into tests/ and link with gtest.\n"
               "#include \"verify/Oracle.h\"\n"
               "#include <gtest/gtest.h>\n\n"
               "using namespace akg;\n\n"
               "TEST(FuzzRepro, Seed%llu) {\n",
               static_cast<unsigned long long>(Seed),
               Rep.firstFailure().c_str(),
               static_cast<unsigned long long>(Seed));
  // Indent the builder body by two spaces.
  std::string Body = Red.CppTestCase;
  std::string Indented = "  ";
  for (char C : Body) {
    Indented += C;
    if (C == '\n')
      Indented += "  ";
  }
  std::fprintf(F, "%s\n", Indented.c_str());
  std::fprintf(F, "  verify::OracleReport Rep = verify::runOracle(M);\n"
                  "  EXPECT_TRUE(Rep.Pass) << Rep.str();\n"
                  "}\n");
  std::fclose(F);
  std::printf("  wrote %s\n", Path.c_str());
}

void appendCorpus(const Args &A, uint64_t Seed, const std::string &Desc) {
  if (A.CorpusFile.empty())
    return;
  std::FILE *F = std::fopen(A.CorpusFile.c_str(), "a");
  if (!F)
    return;
  std::string Line = verify::corpusLine(Seed, Desc);
  std::fprintf(F, "%s\n", Line.c_str());
  std::fclose(F);
}

} // namespace

int main(int Argc, char **Argv) {
  Args A;
  if (!parseArgs(Argc, Argv, A))
    return 2;

  uint64_t First = A.Start, Count = A.Seeds;
  if (A.OneSeed >= 0) {
    First = uint64_t(A.OneSeed);
    Count = 1;
  }
  verify::OracleOptions OO;
  OO.Level = A.Level;
  OO.Threads = compileServiceThreads();
  if (OO.Threads < 2)
    OO.Threads = 4; // the determinism sweep needs a real N

  verify::GenOptions GO;
  if (A.DynShape)
    GO.ThemeSel = verify::Theme::DynShape;

  std::printf("akg-fuzz: seeds [%llu, %llu), matrix=%s, N=%u threads%s\n",
              static_cast<unsigned long long>(First),
              static_cast<unsigned long long>(First + Count),
              A.Level == verify::MatrixLevel::Full ? "full" : "quick",
              OO.Threads, A.DynShape ? ", theme=dynshape" : "");

  unsigned Failures = 0;
  for (uint64_t Seed = First; Seed < First + Count; ++Seed) {
    ir::Module M = verify::generateModule(Seed, GO);
    if (A.Dump)
      std::printf("--- %s\n%s",
                  verify::describeModule(Seed, M).c_str(), M.str().c_str());
    verify::OracleReport Rep = verify::runOracle(M, OO);
    if (A.Dump)
      std::printf("%s", Rep.str().c_str());
    if (Rep.Pass) {
      if ((Seed - First + 1) % 25 == 0)
        std::printf("  ... %llu/%llu seeds clean\n",
                    static_cast<unsigned long long>(Seed - First + 1),
                    static_cast<unsigned long long>(Count));
      continue;
    }
    ++Failures;
    std::printf("FAIL %s\n  %s\n", verify::describeModule(Seed, M).c_str(),
                Rep.firstFailure().c_str());
    // Show what the pipeline did for this module under default options:
    // the per-pass compile trace is usually enough to localize the stage
    // that went wrong before reaching for the reducer output.
    {
      CompileResult TraceRun =
          compileWithAkg(M, AkgOptions(), "fuzz_seed_" + std::to_string(Seed));
      std::printf("%s", TraceRun.Trace.str().c_str());
    }
    // Shrink with the same oracle configuration as the failing run.
    verify::ReduceResult Red = verify::reduceModule(
        M,
        [&](const ir::Module &Cand) { return !verify::runOracle(Cand, OO).Pass; });
    std::printf("  reduced to %zu ops (%u mutations, %u oracle runs)\n",
                Red.Reduced.ops().size(), Red.MutationsKept, Red.ChecksUsed);
    writeRepro(A, Seed, Rep, Red);
    appendCorpus(A, Seed, verify::describeModule(Seed, M) + " -> " +
                              Rep.firstFailure());
    if (!A.KeepGoing)
      break;
  }

  if (Failures == 0) {
    std::printf("akg-fuzz: all %llu seeds clean\n",
                static_cast<unsigned long long>(Count));
    return 0;
  }
  std::printf("akg-fuzz: %u failing seed(s)\n", Failures);
  return 1;
}
