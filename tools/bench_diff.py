#!/usr/bin/env python3
"""Compare freshly generated BENCH_*.json files against committed baselines.

Usage: bench_diff.py <baseline_dir> <current_dir> [--max-regression PCT]
                     [--wall-tolerance X]

Structural checks are hard failures (exit 1): a baseline figure whose fresh
counterpart is missing, a record (op) that disappeared, or a tracked cycle
metric that vanished from a record. Performance checks compare every
"*_cycles" metric: a regression beyond --max-regression percent (default
25) fails. "compile_wall_seconds" (records and totals) gates too, but with
the much looser --wall-tolerance multiplier (default 1.5x) since CI
machines are noisy; other wall-clock metrics ("*_seconds", "*_rate") are
reported but never gate.

The simulated cycle counts are deterministic for a given compiler, so the
default threshold only exists to absorb intentional schedule changes; a PR
that regresses cycles on purpose should refresh bench/baselines/ in the
same commit and say so. The wall gate exists so a compile-time optimization
cannot silently rot: refresh the baselines whenever compile time moves on
purpose (in either direction).

Latency percentiles (totals keys containing "_p50", "_p99", or "_p999",
in seconds or milliseconds) are reported as deltas but never gate: they
are wall-clock and CI machines are noisy.

Serving-quality metrics gate as LOWER bounds: a totals key in
MIN_GATED_KEYS (bucketed effective hit rate, bucketed/exact hit-rate
ratio, and the shape-stream determinism/gates flags) may not drop below
--min-metric-slack (default 0.9) times its baseline. These are
deterministic for a seeded request stream, so a drop means the bucketing
or caching logic regressed, not that the machine was slow.
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def index_records(doc):
    return {r.get("op", f"#{i}"): r for i, r in enumerate(doc.get("records", []))}


def cycle_keys(rec):
    return [k for k, v in rec.items() if k.endswith("_cycles") and isinstance(v, (int, float))]


WALL_KEY = "compile_wall_seconds"

# Totals keys that gate as lower bounds (higher = better, deterministic
# for a seeded stream): effective cache reuse and the shape-stream
# correctness/determinism flags.
MIN_GATED_KEYS = {"bucketed_hit_rate", "hit_rate_ratio", "determinism_ok",
                  "gates_ok"}


def is_percentile_key(key):
    return "_p50" in key or "_p99" in key or "_p999" in key


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline_dir")
    ap.add_argument("current_dir")
    ap.add_argument("--max-regression", type=float, default=25.0,
                    help="max allowed cycle regression in percent")
    ap.add_argument("--wall-tolerance", type=float, default=1.5,
                    help="max allowed compile_wall_seconds as a multiple "
                         "of baseline (noise allowance)")
    ap.add_argument("--min-metric-slack", type=float, default=0.9,
                    help="lower-bounded metrics (hit rates) may not drop "
                         "below this fraction of baseline")
    args = ap.parse_args()

    baselines = sorted(
        f for f in os.listdir(args.baseline_dir)
        if f.startswith("BENCH_") and f.endswith(".json"))
    if not baselines:
        print(f"no BENCH_*.json baselines in {args.baseline_dir}", file=sys.stderr)
        return 1

    failures = []

    def check_wall(name, label, bval, cval, gate):
        # Per-record wall times are fractions of a second and too noisy to
        # gate individually; only figure totals gate (gate=True).
        if not isinstance(bval, (int, float)) or bval <= 0:
            return
        if not isinstance(cval, (int, float)):
            failures.append(f"{name}: {label}.{WALL_KEY} vanished")
            return
        ratio = cval / bval
        marker = ""
        if gate and ratio > args.wall_tolerance:
            failures.append(
                f"{name}: {label}.{WALL_KEY} regressed {ratio:.2f}x "
                f"({bval:.3f}s -> {cval:.3f}s, tolerance "
                f"{args.wall_tolerance:.2f}x)")
            marker = "  <-- FAIL"
        if abs(ratio - 1.0) >= 0.05 or marker:
            print(f"{name} {label}.{WALL_KEY}: {bval:.3f}s -> {cval:.3f}s "
                  f"({ratio:.2f}x){marker}")

    for name in baselines:
        base = load(os.path.join(args.baseline_dir, name))
        cur_path = os.path.join(args.current_dir, name)
        if not os.path.exists(cur_path):
            failures.append(f"{name}: missing from {args.current_dir}")
            continue
        cur = load(cur_path)
        base_recs, cur_recs = index_records(base), index_records(cur)
        for op, brec in base_recs.items():
            crec = cur_recs.get(op)
            if crec is None:
                failures.append(f"{name}: record '{op}' disappeared")
                continue
            for key in cycle_keys(brec):
                bval = brec[key]
                cval = crec.get(key)
                if not isinstance(cval, (int, float)):
                    failures.append(f"{name}: {op}.{key} vanished")
                    continue
                if bval <= 0:
                    continue
                delta = 100.0 * (cval - bval) / bval
                marker = ""
                if delta > args.max_regression:
                    failures.append(
                        f"{name}: {op}.{key} regressed {delta:+.1f}% "
                        f"({bval:.0f} -> {cval:.0f})")
                    marker = "  <-- FAIL"
                if abs(delta) >= 1.0 or marker:
                    print(f"{name} {op}.{key}: {bval:.0f} -> {cval:.0f} "
                          f"({delta:+.1f}%){marker}")
            if WALL_KEY in brec:
                check_wall(name, op, brec[WALL_KEY], crec.get(WALL_KEY),
                           gate=False)
        if WALL_KEY in base.get("totals", {}):
            check_wall(name, "totals", base["totals"][WALL_KEY],
                       cur.get("totals", {}).get(WALL_KEY), gate=True)
        # Per-stage wall breakdown (stage_wall.<pass>, from the compile
        # traces). Most stages are too small and too noisy to gate and are
        # reported informationally, but stage_wall.ast_gen gates at the
        # wall tolerance: AST generation was the dominant cold-path cost
        # (ISSUE 7) and its fast paths must not silently rot back into the
        # per-statement LP storm.
        GATED_STAGES = {"stage_wall.ast_gen"}
        btotals, ctotals = base.get("totals", {}), cur.get("totals", {})
        for key in sorted(btotals):
            if not key.startswith("stage_wall."):
                continue
            gated = key in GATED_STAGES
            bval, cval = btotals[key], ctotals.get(key)
            if not isinstance(bval, (int, float)) or bval <= 0:
                continue
            if not isinstance(cval, (int, float)):
                if gated:
                    failures.append(f"{name}: totals.{key} vanished")
                else:
                    print(f"{name} totals.{key}: {bval:.3f}s -> (missing)")
                continue
            ratio = cval / bval
            marker = " [informational]"
            if gated:
                marker = ""
                if ratio > args.wall_tolerance:
                    failures.append(
                        f"{name}: totals.{key} regressed {ratio:.2f}x "
                        f"({bval:.3f}s -> {cval:.3f}s, tolerance "
                        f"{args.wall_tolerance:.2f}x)")
                    marker = "  <-- FAIL"
            if abs(ratio - 1.0) >= 0.05 or marker.endswith("FAIL"):
                print(f"{name} totals.{key}: {bval:.3f}s -> {cval:.3f}s "
                      f"({ratio:.2f}x){marker}")
        # Latency percentiles: informational deltas only.
        for key in sorted(btotals):
            if not is_percentile_key(key):
                continue
            bval, cval = btotals[key], ctotals.get(key)
            if not isinstance(bval, (int, float)) or bval <= 0:
                continue
            if not isinstance(cval, (int, float)):
                print(f"{name} totals.{key}: {bval:.4g} -> (missing)")
                continue
            ratio = cval / bval
            if abs(ratio - 1.0) >= 0.05:
                print(f"{name} totals.{key}: {bval:.4g} -> {cval:.4g} "
                      f"({ratio:.2f}x) [informational]")
        # Lower-bounded serving metrics: a hit-rate (or determinism flag)
        # that drops below slack * baseline is a regression.
        for key in sorted(btotals):
            if key not in MIN_GATED_KEYS:
                continue
            bval, cval = btotals[key], ctotals.get(key)
            if not isinstance(bval, (int, float)) or bval <= 0:
                continue
            if not isinstance(cval, (int, float)):
                failures.append(f"{name}: totals.{key} vanished")
                continue
            floor = bval * args.min_metric_slack
            marker = ""
            if cval < floor:
                failures.append(
                    f"{name}: totals.{key} dropped {bval:.4g} -> {cval:.4g} "
                    f"(floor {floor:.4g})")
                marker = "  <-- FAIL"
            if abs(cval / bval - 1.0) >= 0.02 or marker:
                print(f"{name} totals.{key}: {bval:.4g} -> {cval:.4g}"
                      f"{marker}")

    if failures:
        print(f"\nbench_diff: {len(failures)} failure(s)", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"bench_diff: {len(baselines)} figure(s) within "
          f"{args.max_regression:.0f}% of baseline "
          f"(wall tolerance {args.wall_tolerance:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
