#!/usr/bin/env python3
"""Compare freshly generated BENCH_*.json files against committed baselines.

Usage: bench_diff.py <baseline_dir> <current_dir> [--max-regression PCT]

Structural checks are hard failures (exit 1): a baseline figure whose fresh
counterpart is missing, a record (op) that disappeared, or a tracked cycle
metric that vanished from a record. Performance checks compare every
"*_cycles" metric: a regression beyond --max-regression percent (default
25) fails; wall-clock metrics ("*_seconds", "*_rate") are reported but
never gate, since CI machines vary too much for wall time to be a signal.

The simulated cycle counts are deterministic for a given compiler, so the
default threshold only exists to absorb intentional schedule changes; a PR
that regresses cycles on purpose should refresh bench/baselines/ in the
same commit and say so.
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def index_records(doc):
    return {r.get("op", f"#{i}"): r for i, r in enumerate(doc.get("records", []))}


def cycle_keys(rec):
    return [k for k, v in rec.items() if k.endswith("_cycles") and isinstance(v, (int, float))]


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline_dir")
    ap.add_argument("current_dir")
    ap.add_argument("--max-regression", type=float, default=25.0,
                    help="max allowed cycle regression in percent")
    args = ap.parse_args()

    baselines = sorted(
        f for f in os.listdir(args.baseline_dir)
        if f.startswith("BENCH_") and f.endswith(".json"))
    if not baselines:
        print(f"no BENCH_*.json baselines in {args.baseline_dir}", file=sys.stderr)
        return 1

    failures = []
    for name in baselines:
        base = load(os.path.join(args.baseline_dir, name))
        cur_path = os.path.join(args.current_dir, name)
        if not os.path.exists(cur_path):
            failures.append(f"{name}: missing from {args.current_dir}")
            continue
        cur = load(cur_path)
        base_recs, cur_recs = index_records(base), index_records(cur)
        for op, brec in base_recs.items():
            crec = cur_recs.get(op)
            if crec is None:
                failures.append(f"{name}: record '{op}' disappeared")
                continue
            for key in cycle_keys(brec):
                bval = brec[key]
                cval = crec.get(key)
                if not isinstance(cval, (int, float)):
                    failures.append(f"{name}: {op}.{key} vanished")
                    continue
                if bval <= 0:
                    continue
                delta = 100.0 * (cval - bval) / bval
                marker = ""
                if delta > args.max_regression:
                    failures.append(
                        f"{name}: {op}.{key} regressed {delta:+.1f}% "
                        f"({bval:.0f} -> {cval:.0f})")
                    marker = "  <-- FAIL"
                if abs(delta) >= 1.0 or marker:
                    print(f"{name} {op}.{key}: {bval:.0f} -> {cval:.0f} "
                          f"({delta:+.1f}%){marker}")

    if failures:
        print(f"\nbench_diff: {len(failures)} failure(s)", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"bench_diff: {len(baselines)} figure(s) within "
          f"{args.max_regression:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
