#!/usr/bin/env python3
"""Validate an AKG_TRACE JSONL dump against the documented schema.

Each line of the file is one compile's trace (DESIGN.md 4g):

  {"kernel": str, "total_seconds": num, "cache_hit": bool,
   "outcome"?: str,
   "events": [{"pass": str, "stage": str, "attempt": int, "retry": int,
               "wall_seconds": num, "counters": {str: int},
               "degradations": [{"stage": str, "reason": str,
                                 "action": str}],
               "note"?: str, "snapshot"?: str}]}

The optional top-level "outcome" names a non-ok terminal code (DESIGN.md
4h): deadline_exceeded, cancelled, overloaded, quarantined, unavailable,
or fault_injected. Terminal/service events carry the same vocabulary as
their "pass" (plus "shed", "quarantined" and "chaos_fault").

Usage:
  check_trace.py trace.jsonl                       # schema only
  check_trace.py trace.jsonl --expect-clean        # + no degradations
  check_trace.py trace.jsonl --expect-degraded storage
                                                   # + a degradation at
                                                   #   that stage occurs
  check_trace.py trace.jsonl --expect-outcome deadline_exceeded
                                                   # + some line ended
                                                   #   with that outcome

Exit code 0 when every line validates (and expectations hold), 1 with a
diagnostic otherwise.
"""

import argparse
import json
import sys

STAGES = {
    "none", "scheduler", "tiling", "fusion", "intra_tile",
    "storage", "vectorize", "double_buffer", "sync",
}

# Compile targets a trace line may declare (the "target" key; absent on
# traces predating the target layer, which read as "cce").
TARGETS = {"cce", "simt"}


# Executed passes of a full clean compile, in pipeline order. Only the
# lowering pass differs per target; storage_check and sync keep their
# names and dispatch through the target backend.
def clean_passes(target):
    return [
        "prepare", "extract_poly", "dependences", "schedule", "tiling",
        "build_tree", "fusion", "intra_tile", "ast_gen",
        f"lower_{target}", "storage_check", "sync",
    ]

# Non-ok terminal outcomes the service / pipeline can stamp (DESIGN.md 4h).
OUTCOMES = {
    "deadline_exceeded", "cancelled", "overloaded", "quarantined",
    "unavailable", "fault_injected",
}


def fail(msg):
    print(f"check_trace: {msg}", file=sys.stderr)
    sys.exit(1)


def want(cond, msg):
    if not cond:
        fail(msg)


def check_event(where, ev):
    want(isinstance(ev, dict), f"{where}: event is not an object")
    for key, typ in (("pass", str), ("stage", str), ("attempt", int),
                     ("retry", int), ("wall_seconds", (int, float)),
                     ("counters", dict), ("degradations", list)):
        want(key in ev, f"{where}: missing event key '{key}'")
        want(isinstance(ev[key], typ), f"{where}: '{key}' has wrong type")
    want(ev["stage"] in STAGES, f"{where}: unknown stage '{ev['stage']}'")
    want(ev["attempt"] >= 0 and ev["retry"] >= 0,
         f"{where}: negative attempt/retry")
    want(ev["wall_seconds"] >= 0, f"{where}: negative wall_seconds")
    for k, v in ev["counters"].items():
        want(isinstance(k, str) and isinstance(v, int),
             f"{where}: counters must map str -> int")
    for j, d in enumerate(ev["degradations"]):
        dwhere = f"{where} degradation {j}"
        want(isinstance(d, dict), f"{dwhere}: not an object")
        for key in ("stage", "reason", "action"):
            want(isinstance(d.get(key), str), f"{dwhere}: bad '{key}'")
        want(d["stage"] in STAGES, f"{dwhere}: unknown stage '{d['stage']}'")
    for key in ("note", "snapshot"):
        if key in ev:
            want(isinstance(ev[key], str), f"{where}: '{key}' must be a string")


def check_trace(where, tr):
    want(isinstance(tr, dict), f"{where}: trace is not an object")
    for key, typ in (("kernel", str), ("total_seconds", (int, float)),
                     ("cache_hit", bool), ("events", list)):
        want(key in tr, f"{where}: missing key '{key}'")
        want(isinstance(tr[key], typ), f"{where}: '{key}' has wrong type")
    want(tr["events"], f"{where}: empty event list")
    if "outcome" in tr:
        want(isinstance(tr["outcome"], str),
             f"{where}: 'outcome' must be a string")
        want(tr["outcome"] in OUTCOMES,
             f"{where}: unknown outcome '{tr['outcome']}'")
    if "target" in tr:
        want(isinstance(tr["target"], str),
             f"{where}: 'target' must be a string")
        want(tr["target"] in TARGETS,
             f"{where}: unknown target '{tr['target']}'")
    for i, ev in enumerate(tr["events"]):
        check_event(f"{where} event {i}", ev)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace", help="JSONL file written via AKG_TRACE=<path>")
    ap.add_argument("--expect-clean", action="store_true",
                    help="require a clean compile: no degradations and the "
                         "full pass sequence on some line")
    ap.add_argument("--expect-degraded", metavar="STAGE",
                    help="require a degradation at STAGE on some line")
    ap.add_argument("--expect-outcome", metavar="CODE",
                    help="require some line's terminal outcome to be CODE")
    args = ap.parse_args()

    if args.expect_degraded and args.expect_degraded not in STAGES:
        fail(f"--expect-degraded: unknown stage '{args.expect_degraded}'")
    if args.expect_outcome and args.expect_outcome not in OUTCOMES:
        fail(f"--expect-outcome: unknown outcome '{args.expect_outcome}'")

    traces = []
    with open(args.trace) as f:
        for n, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                tr = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"line {n}: invalid JSON: {e}")
            check_trace(f"line {n}", tr)
            traces.append((n, tr))
    if not traces:
        fail("no traces in file")

    if args.expect_clean:
        ok = False
        for _, tr in traces:
            degraded = any(ev["degradations"] for ev in tr["events"])
            expected = clean_passes(tr.get("target", "cce"))
            executed = [ev["pass"] for ev in tr["events"]
                        if ev["pass"] in expected]
            if not degraded and executed == expected:
                ok = True
        want(ok, "--expect-clean: no line shows a clean full-pipeline compile")

    if args.expect_degraded:
        ok = any(d["stage"] == args.expect_degraded
                 for _, tr in traces
                 for ev in tr["events"]
                 for d in ev["degradations"])
        want(ok, f"--expect-degraded: no degradation at stage "
                 f"'{args.expect_degraded}' found")

    if args.expect_outcome:
        ok = any(tr.get("outcome") == args.expect_outcome
                 for _, tr in traces)
        want(ok, f"--expect-outcome: no line ended with outcome "
                 f"'{args.expect_outcome}'")

    print(f"check_trace: {len(traces)} trace(s) OK")


if __name__ == "__main__":
    main()
